"""Cross-module integration scenarios.

These tests exercise long call chains across packages — the scenarios a
downstream user actually runs — rather than single-module behaviour.
"""

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import (
    HayatManager,
    best_critical_frequency_ghz,
    make_critical_thread,
    serve_critical_thread,
)
from repro.dtm import ProactiveDTMPolicy
from repro.mapping import ChipState, DarkCoreMap
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig
from repro.sim.export import load_results_json, save_results_json
from repro.thermal import ThermalSensor
from repro.workload import poisson_arrivals


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(
        lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=10.0, seed=11,
    )


class TestNoisySensors:
    def test_lifetime_completes_with_sensor_noise(self, chip, aging_table, cfg):
        """Gaussian thermal-sensor noise must not break the control loop
        (it may add spurious DTM events, never crashes or stalls)."""
        noisy = ThermalSensor(
            resolution_k=0.5, noise_sigma_k=1.5, rng=np.random.default_rng(8)
        )
        ctx = ChipContext(
            chip, aging_table, dark_fraction_min=0.5, thermal_sensor=noisy
        )
        result = LifetimeSimulator(cfg).run(ctx, HayatManager())
        assert len(result.epochs) == 2
        assert (result.health_trajectory() > 0).all()

    def test_noise_only_adds_events(self, chip, aging_table, cfg):
        clean_ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        clean = LifetimeSimulator(cfg).run(clean_ctx, HayatManager())
        noisy_sensor = ThermalSensor(
            resolution_k=0.5, noise_sigma_k=3.0, rng=np.random.default_rng(9)
        )
        noisy_ctx = ChipContext(
            chip, aging_table, dark_fraction_min=0.5, thermal_sensor=noisy_sensor
        )
        noisy = LifetimeSimulator(cfg).run(noisy_ctx, HayatManager())
        assert noisy.total_dtm_events() >= clean.total_dtm_events()


class TestAgedCriticalService:
    def test_full_pipeline(self, chip, aging_table, cfg):
        """Age the chip, then serve a critical request off the live
        health state — the cross-package happy path."""
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        LifetimeSimulator(cfg).run(ctx, HayatManager())
        aged_fmax = ctx.measured_fmax_ghz()

        state = ChipState(64, [], DarkCoreMap(np.zeros(64, dtype=bool)))
        offer = best_critical_frequency_ghz(state, aged_fmax)
        thread = make_critical_thread("hot-job", 2.5, np.random.default_rng(0))
        placement = serve_critical_thread(state, thread, aged_fmax)
        assert placement.freq_ghz == pytest.approx(offer)
        state.validate(aged_fmax)


class TestProactiveDTMInLoop:
    def test_swappable_enforcement(self, chip, aging_table, cfg):
        """The simulator accepts the proactive DTM subclass unchanged."""
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        sim = LifetimeSimulator(cfg, dtm=ProactiveDTMPolicy(ctx.predictor))
        result = sim.run(ctx, VAAManager())
        assert len(result.epochs) == 2


class TestEpochCallback:
    def test_callback_streams_records(self, chip, aging_table, cfg):
        seen = []
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        sim = LifetimeSimulator(cfg, epoch_callback=seen.append)
        result = sim.run(ctx, HayatManager())
        assert len(seen) == len(result.epochs)
        assert seen[0] is result.epochs[0]


class TestArrivalsWithExport:
    def test_arrivals_survive_export_roundtrip(self, chip, aging_table, tmp_path):
        cfg = SimulationConfig(
            lifetime_years=0.5, epoch_years=0.5, dark_fraction_min=0.5,
            window_s=10.0, load_factor=0.7, seed=3,
        )
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        sim = LifetimeSimulator(
            cfg,
            arrivals_factory=lambda e, w, rng: poisson_arrivals(w, 4.0, rng),
        )
        result = sim.run(ctx, HayatManager())
        path = str(tmp_path / "arr.json")
        save_results_json([result], path)
        loaded = load_results_json(path)[0]
        assert loaded.epochs[0].arrivals == result.epochs[0].arrivals
        assert loaded.epochs[0].arrivals > 0
