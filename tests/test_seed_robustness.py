"""Seed robustness: the headline ordering must not be a seed artifact.

Tiny-scale replications of the Fig. 7/9 orderings across independent
silicon and workload seeds.  These are smoke-level (2 chips, short
lifetimes); the full population statistics live in the benchmarks.
"""

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.sim import SimulationConfig, run_campaign
from repro.variation import generate_population


@pytest.mark.parametrize("pop_seed,wl_seed", [(1, 10), (2, 20), (3, 30)])
def test_hayat_ordering_across_seeds(aging_table, pop_seed, wl_seed):
    cfg = SimulationConfig(
        lifetime_years=2.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=10.0, seed=wl_seed,
    )
    campaign = run_campaign(
        [VAAManager(), HayatManager()],
        config=cfg,
        population=generate_population(2, seed=pop_seed),
        table=aging_table,
    )
    vaa_events = sum(r.total_dtm_events() for r in campaign.results["vaa"])
    hayat_events = sum(r.total_dtm_events() for r in campaign.results["hayat"])
    assert hayat_events <= vaa_events

    vaa_chip_rate = np.mean(
        [r.chip_fmax_aging_rate() for r in campaign.results["vaa"]]
    )
    hayat_chip_rate = np.mean(
        [r.chip_fmax_aging_rate() for r in campaign.results["hayat"]]
    )
    assert hayat_chip_rate <= vaa_chip_rate + 1e-9
