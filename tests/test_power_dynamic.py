"""Dynamic power model."""

import numpy as np
import pytest

from repro.power import DynamicPowerModel


class TestDynamicPower:
    def test_calibration_point(self):
        """~3.8 W for a fully-active core at 3 GHz / 1.13 V."""
        model = DynamicPowerModel()
        assert model.power_w(3.0, 1.0) == pytest.approx(3.83, abs=0.02)

    def test_linear_in_frequency(self):
        model = DynamicPowerModel()
        assert model.power_w(2.0) == pytest.approx(2 * model.power_w(1.0))

    def test_linear_in_activity(self):
        model = DynamicPowerModel()
        assert model.power_w(3.0, 0.5) == pytest.approx(0.5 * model.power_w(3.0, 1.0))

    def test_quadratic_in_vdd(self):
        low = DynamicPowerModel(vdd=1.0).power_w(3.0)
        high = DynamicPowerModel(vdd=2.0).power_w(3.0)
        assert high == pytest.approx(4 * low)

    def test_zero_frequency_zero_power(self):
        assert DynamicPowerModel().power_w(0.0) == 0.0

    def test_array_broadcast(self):
        model = DynamicPowerModel()
        out = model.power_w(np.array([1.0, 2.0]), np.array([1.0, 0.5]))
        assert out.shape == (2,)
        assert out[0] == pytest.approx(model.power_w(1.0, 1.0))

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            DynamicPowerModel().power_w(-1.0)

    def test_rejects_activity_above_one(self):
        with pytest.raises(ValueError):
            DynamicPowerModel().power_w(1.0, 1.5)

    def test_rejects_nonpositive_ceff(self):
        with pytest.raises(ValueError):
            DynamicPowerModel(ceff_nf=0.0)
