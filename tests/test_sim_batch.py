"""Batched population engine: bit-identity with the per-chip path.

Every test here pins the tentpole contract of
:class:`repro.sim.batch.BatchLifetimeSimulator`: batching is purely an
execution strategy — every ``LifetimeResult`` field, across batch sizes,
mixed floorplans, fallbacks, and checkpoint resumes, must equal the
per-chip path bit for bit.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.floorplan import Floorplan
from repro.obs import MetricsRegistry, use_registry
from repro.sim import (
    BatchLifetimeSimulator,
    CampaignCheckpoint,
    CampaignJobError,
    ChipContext,
    LifetimeSimulator,
    SimulationConfig,
    run_campaign,
)
from repro.sim.export import result_to_dict
from repro.variation import generate_population
from repro.variation.population import ChipPopulation
from tests.test_sim_checkpoint import InterruptedHayat


def small_config(**overrides) -> SimulationConfig:
    base = dict(
        lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=5.0, seed=7,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def assert_results_identical(batched, reference) -> None:
    """Field-by-field equality of two LifetimeResult lists."""
    assert len(batched) == len(reference)
    for got, want in zip(batched, reference):
        assert got.chip_id == want.chip_id
        assert got.policy_name == want.policy_name
        assert got.dark_fraction_min == want.dark_fraction_min
        np.testing.assert_array_equal(got.fmax_init_ghz, want.fmax_init_ghz)
        assert len(got.epochs) == len(want.epochs)
        for eb, es in zip(got.epochs, want.epochs):
            for field in dataclasses.fields(eb):
                got_value = getattr(eb, field.name)
                want_value = getattr(es, field.name)
                if isinstance(got_value, np.ndarray):
                    assert np.array_equal(got_value, want_value), (
                        got.chip_id, eb.epoch_index, field.name,
                    )
                else:
                    assert got_value == want_value, (
                        got.chip_id, eb.epoch_index, field.name,
                    )


@pytest.fixture(scope="module")
def pieces(aging_table):
    return small_config(), generate_population(6, seed=11), aging_table


@pytest.fixture(scope="module")
def per_chip_reference(pieces):
    """Per-chip results for both policies, computed once."""
    cfg, population, table = pieces
    return run_campaign(
        [VAAManager(), HayatManager()],
        config=cfg, population=population, table=table,
    )


class TestEngineDirect:
    def test_matches_per_chip_simulator(self, pieces):
        cfg, population, table = pieces
        policy = HayatManager()
        ctxs = [
            ChipContext(chip, table, dark_fraction_min=cfg.dark_fraction_min)
            for chip in population
        ]
        batched = BatchLifetimeSimulator(cfg).run(ctxs, policy)
        solo = [
            LifetimeSimulator(cfg).run(
                ChipContext(
                    chip, table, dark_fraction_min=cfg.dark_fraction_min
                ),
                policy,
            )
            for chip in population
        ]
        assert_results_identical(batched, solo)

    def test_empty_input(self, pieces):
        cfg, _, _ = pieces
        assert BatchLifetimeSimulator(cfg).run([], HayatManager()) == []

    def test_single_chip_delegates(self, pieces):
        """A one-chip batch has nothing to stack: per-chip fallback,
        identical result."""
        cfg, population, table = pieces
        ctx = ChipContext(
            population[0], table, dark_fraction_min=cfg.dark_fraction_min
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            batched = BatchLifetimeSimulator(cfg).run([ctx], HayatManager())
        solo = LifetimeSimulator(cfg).run(
            ChipContext(
                population[0], table, dark_fraction_min=cfg.dark_fraction_min
            ),
            HayatManager(),
        )
        assert_results_identical(batched, [solo])
        assert registry.counter("sim.batch_fallbacks") == 1
        assert registry.counter("sim.batched_chips") == 0

    def test_unfused_config_falls_back(self, pieces):
        cfg, population, table = pieces
        unfused = small_config(fused_window=False)
        ctxs = [
            ChipContext(chip, table, dark_fraction_min=0.5)
            for chip in population.chips[:3]
        ]
        registry = MetricsRegistry()
        with use_registry(registry):
            batched = BatchLifetimeSimulator(unfused).run(ctxs, HayatManager())
        solo = [
            LifetimeSimulator(unfused).run(
                ChipContext(chip, table, dark_fraction_min=0.5),
                HayatManager(),
            )
            for chip in population.chips[:3]
        ]
        assert_results_identical(batched, solo)
        assert registry.counter("sim.batch_fallbacks") == 1


class TestCampaignBatchSizes:
    @pytest.mark.parametrize("batch_size", [1, 3, 64])
    def test_bit_identical_across_batch_sizes(
        self, pieces, per_chip_reference, batch_size
    ):
        """The acceptance matrix: sizes below, at, and far above the
        population (64 forms one partial batch per policy)."""
        cfg, population, table = pieces
        batched = run_campaign(
            [VAAManager(), HayatManager()],
            config=cfg, population=population, table=table,
            batch_size=batch_size,
        )
        for name in per_chip_reference.results:
            assert_results_identical(
                batched.results[name], per_chip_reference.results[name]
            )

    def test_auto_matches_no_batch(self, pieces, per_chip_reference):
        cfg, population, table = pieces
        auto = run_campaign(
            [VAAManager(), HayatManager()],
            config=cfg, population=population, table=table,
            batch_size="auto",
        )
        for name in per_chip_reference.results:
            assert_results_identical(
                auto.results[name], per_chip_reference.results[name]
            )

    def test_counters_observed(self, pieces):
        """Batching is visible (sim.batched_chips, sim.batch_solves)
        while the physics counters stay additive-identical to the
        per-chip run."""
        cfg, population, table = pieces
        physics = (
            "sim.epochs", "sim.fused_steps", "sim.settle_rounds",
            "thermal.coupled_solves", "thermal.coupled_iterations",
            "thermal.transient_steps", "thermal.steady_solves",
        )
        plain_registry = MetricsRegistry()
        with use_registry(plain_registry):
            run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=table,
            )
        batch_registry = MetricsRegistry()
        with use_registry(batch_registry):
            run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=table,
                batch_size=3,
            )
        assert batch_registry.counter("sim.batched_chips") == len(population)
        assert batch_registry.counter("sim.batch_solves") > 0
        assert plain_registry.counter("sim.batched_chips") == 0
        for key in physics:
            assert plain_registry.counter(key) == batch_registry.counter(key), key

    def test_invalid_batch_size_rejected(self, pieces):
        cfg, population, table = pieces
        for bad in (0, -3, 2.5, True, "huge"):
            with pytest.raises(ValueError):
                run_campaign(
                    [HayatManager()],
                    config=cfg, population=population, table=table,
                    batch_size=bad,
                )


class TestMixedFloorplans:
    def test_partial_batches_per_floorplan_group(self, aging_table):
        """A population spanning two floorplans batches each signature
        group separately (partial batches included) and still matches
        the per-chip path exactly."""
        cfg = small_config()
        big = generate_population(3, seed=11)
        small = generate_population(2, seed=13, floorplan=Floorplan(4, 4))
        for chip in small:
            chip.chip_id = f"alt-{chip.chip_id}"
        population = ChipPopulation(
            floorplan=big.floorplan,
            params=big.params,
            chips=list(big.chips) + list(small.chips),
        )
        reference = run_campaign(
            [HayatManager()],
            config=cfg, population=population, table=aging_table,
        )
        batched = run_campaign(
            [HayatManager()],
            config=cfg, population=population, table=aging_table,
            batch_size=2,
        )
        assert_results_identical(
            batched.results["hayat"], reference.results["hayat"]
        )


class TestBatchedResume:
    def test_kill_mid_batched_campaign_then_resume(self, pieces, tmp_path):
        """A batched campaign dies on one chip: the batch demotes to
        singletons, the innocents checkpoint, and a batched resume with
        a *different* batch size reproduces the uninterrupted per-chip
        campaign bit for bit."""
        cfg, population, table = pieces
        population = ChipPopulation(
            floorplan=population.floorplan,
            params=population.params,
            chips=list(population.chips[:3]),
        )
        path = str(tmp_path / "campaign.jsonl")

        reference = run_campaign(
            [HayatManager()],
            config=cfg, population=population, table=table,
        )

        # Run 1: chip-02's unit crashes; fail-fast, but the batch
        # demotes to singletons first, so the innocent batch-mates
        # ordered before the culprit complete and checkpoint.
        with use_registry(MetricsRegistry()):
            with pytest.raises(CampaignJobError):
                run_campaign(
                    [InterruptedHayat("chip-02")],
                    config=cfg, population=population, table=table,
                    checkpoint=path, batch_size=3,
                )
        assert len(CampaignCheckpoint(path)) == 2

        # Run 2: resume with the fault gone and a different batch size;
        # only the crashed chip still executes.
        registry = MetricsRegistry()
        with use_registry(registry):
            resumed = run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=table,
                checkpoint=path, batch_size=2,
            )
        assert registry.counter("campaign.resumed_jobs") == 2
        assert registry.counter("campaign.jobs_executed") == 1
        for a, b in zip(reference.results["hayat"], resumed.results["hayat"]):
            assert result_to_dict(a) == result_to_dict(b)
