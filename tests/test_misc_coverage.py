"""Edge coverage for small behaviours not exercised elsewhere."""

import numpy as np
import pytest

from repro.aging.tables import default_aging_table
from repro.mapping import ChipState, DarkCoreMap
from repro.noc.traffic import _intensity_of
from repro.power import FrequencyLadder
from repro.workload import make_mix
from repro.workload.application import ThreadSpec
from repro.workload.traces import PhaseTrace


class TestDefaultTableCache:
    def test_cached_instance_shared(self):
        assert default_aging_table() is default_aging_table()

    def test_production_grid_is_fine(self):
        table = default_aging_table()
        assert len(table.duty_grid) >= 12
        assert table.max_age_years >= 100.0


class TestLadderImmutability:
    def test_steps_copy_cannot_corrupt(self):
        ladder = FrequencyLadder()
        steps = ladder.steps_ghz
        steps[:] = 0.0
        assert ladder.quantize_down(2.5) == pytest.approx(2.5)


class TestTrafficIntensityFallback:
    def test_unknown_app_gets_default(self):
        threads = make_mix(["swaptions"], 2, np.random.default_rng(0)).threads
        state = ChipState(4, threads, DarkCoreMap.from_on_indices(4, [0, 1]))
        assert _intensity_of(state, "mystery#0") == pytest.approx(0.1)

    def test_known_app_resolves_profile(self):
        threads = make_mix(["dedup"], 3, np.random.default_rng(0)).threads
        state = ChipState(4, threads, DarkCoreMap.from_on_indices(4, [0, 1, 2]))
        assert _intensity_of(state, "dedup#7") == pytest.approx(0.45)


class TestChipStateEdges:
    def test_fence_rejects_powered_cores(self):
        threads = make_mix(["swaptions"], 1, np.random.default_rng(0)).threads
        state = ChipState(4, threads, DarkCoreMap.from_on_indices(4, [0]))
        with pytest.raises(ValueError, match="dark"):
            state.fence(np.array([0]))

    def test_fence_replaces_previous_fence(self):
        threads = make_mix(["swaptions"], 1, np.random.default_rng(0)).threads
        state = ChipState(4, threads, DarkCoreMap.from_on_indices(4, [0]))
        state.fence(np.array([1, 2]))
        state.fence(np.array([3]))
        np.testing.assert_array_equal(
            state.fenced, [False, False, False, True]
        )

    def test_add_thread_returns_index(self):
        threads = make_mix(["swaptions"], 1, np.random.default_rng(0)).threads
        state = ChipState(4, threads, DarkCoreMap.from_on_indices(4, [0]))
        trace = PhaseTrace(0.5, 0.1, 1.0, np.random.default_rng(1))
        spec = ThreadSpec("late#0", 0, 2.0, 0.5, 1.0, trace)
        assert state.add_thread(spec) == 1
        assert state.threads[1] is spec


class TestContextAccessors:
    def test_measured_fmax_uses_sensor_health(self, chip, aging_table):
        from repro.sim import ChipContext

        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        np.testing.assert_allclose(
            ctx.measured_fmax_ghz(),
            chip.fmax_init_ghz * ctx.measured_health(),
        )

    def test_read_temps_quantized(self, chip, aging_table):
        from repro.sim import ChipContext

        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        out = ctx.read_temps(np.full(64, 350.26))
        np.testing.assert_allclose(out, 350.5)

    def test_chip_seed_token_stable(self, chip, aging_table):
        from repro.sim import ChipContext

        a = ChipContext(chip, aging_table).chip_seed_token()
        b = ChipContext(chip, aging_table).chip_seed_token()
        assert a == b
