"""Sensor calibration bias: the dangerous failure mode.

A sensor that under-reports hides real violations from DTM; the
ground-truth violation counter must expose them.
"""

import numpy as np
import pytest

from repro.baselines import ContiguousManager
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig
from repro.thermal import ThermalSensor


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(
        lifetime_years=0.5, epoch_years=0.5, dark_fraction_min=0.25,
        window_s=10.0, seed=12,
    )


def run_with_bias(chip, table, cfg, bias_k):
    sensor = ThermalSensor(resolution_k=0.5, bias_k=bias_k)
    ctx = ChipContext(
        chip, table, dark_fraction_min=0.25, thermal_sensor=sensor
    )
    # The dense contiguous policy at a 25 % floor stresses the DTM loop.
    return LifetimeSimulator(cfg).run(ctx, ContiguousManager())


class TestSensorBias:
    def test_bias_applied_to_readings(self):
        sensor = ThermalSensor(resolution_k=0.5, bias_k=-4.0)
        out = sensor.read(np.array([350.0]))
        assert out[0] == pytest.approx(346.0)

    def test_underreporting_hides_violations(self, chip, aging_table, cfg):
        """With a -6 K bias, ground truth spends more core-steps above
        Tsafe than with honest sensors."""
        honest = run_with_bias(chip, aging_table, cfg, 0.0)
        lying = run_with_bias(chip, aging_table, cfg, -6.0)
        v_honest = sum(e.tsafe_violation_steps for e in honest.epochs)
        v_lying = sum(e.tsafe_violation_steps for e in lying.epochs)
        assert v_lying >= v_honest

    def test_overreporting_is_conservative(self, chip, aging_table, cfg):
        """A +6 K bias triggers DTM earlier, so the chip spends fewer
        ground-truth core-steps above Tsafe.  (The *event count* can go
        either way: reacting early can mean one clean migration instead
        of an escalating throttle storm.)"""
        honest = run_with_bias(chip, aging_table, cfg, 0.0)
        cautious = run_with_bias(chip, aging_table, cfg, +6.0)
        v_honest = sum(e.tsafe_violation_steps for e in honest.epochs)
        v_cautious = sum(e.tsafe_violation_steps for e in cautious.epochs)
        assert v_cautious <= v_honest

    def test_violation_counter_zero_on_cool_runs(self, chip, aging_table):
        from repro.core import HayatManager

        cfg = SimulationConfig(
            lifetime_years=0.5, epoch_years=0.5, dark_fraction_min=0.5,
            window_s=10.0, seed=12,
        )
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        result = LifetimeSimulator(cfg).run(ctx, HayatManager())
        assert all(e.tsafe_violation_steps == 0 for e in result.epochs)
