"""The incremental delta-candidate engine (`repro.core.delta_eval`).

Three contracts are pinned here:

* **Thermal accuracy** — `DeltaEvaluator.solve_base` reproduces the
  dense ``predict_batch`` temperatures bit for bit on the base rows,
  and `candidate_temps` reconstructs candidate rows within the
  documented off-column linearization bound (numerically exact with
  ``leakage_iterations=0``).
* **Decision identity** — Algorithm 1 with the delta path engaged makes
  the same placements as the dense path across feasibility regimes
  (plenty of slack, strict/infeasible, every-candidate-overshoots,
  mixed batched lanes, dark cores), and the escape hatch
  (``enabled=False`` / ``--no-delta-candidates``) restores the dense
  path verbatim (zero delta rounds, no ``sim.delta_eval`` timer).
* **Campaign identity** — whole campaigns run bit-identical with the
  engine on or off, including through a kill-mid-campaign checkpoint
  resume.
"""

import numpy as np
import pytest

from repro.core import HayatManager, HayatMapper, MappingError, OnlineHealthEstimator
from repro.core.dcm import temperature_optimized_dcm
from repro.core.delta_eval import (
    DeltaEvaluator,
    DeltaOptions,
    configure_delta_eval,
    current_delta_options,
    delta_options,
)
from repro.core.mapper_batch import MapperLane, map_threads_batch
from repro.mapping import ChipState
from repro.obs import MetricsRegistry, use_registry
from repro.power import PowerModel
from repro.sim import (
    CampaignCheckpoint,
    CampaignJobError,
    SimulationConfig,
    run_campaign,
)
from repro.sim.export import result_to_dict
from repro.thermal import ThermalPredictor, ThermalRCNetwork
from repro.variation import generate_population
from repro.workload import make_mix
from tests.test_sim_checkpoint import InterruptedHayat
from tests.test_sim_supervisor import tiny_config

#: Documented worst-case off-column linearization error (kelvin) for
#: full thread-power deltas; measured maxima sit an order below this.
LINEARIZATION_BOUND_K = 0.1


@pytest.fixture(scope="module")
def rig(population, floorplan):
    net = ThermalRCNetwork(floorplan)
    predictors = [
        ThermalPredictor.learn(net, PowerModel.for_chip(chip))
        for chip in population
    ]
    return net.influence_matrix(), predictors


def _random_base_state(rng, n):
    """A mapper-shaped incumbent: gated cores, idle powered cores, and a
    loaded subset."""
    powered = rng.random(n) < 0.6
    freq = np.where(rng.random(n) < 0.4, rng.uniform(1.0, 3.0, n), 0.0)
    freq *= powered
    act = np.where(freq > 0, rng.uniform(0.3, 1.0, n), 0.0)
    temps0 = rng.uniform(310.0, 360.0, n)
    return freq, act, powered, temps0


def _dense_candidates(pred, freq, act, powered, temps0, cand, newf, newa):
    """The dense-path temperatures for candidate rows (reference)."""
    b = cand.size
    fb = np.tile(freq, (b, 1))
    ab = np.tile(act, (b, 1))
    rows = np.arange(b)
    fb[rows, cand] = newf
    ab[rows, cand] = newa
    return pred.predict_batch(
        fb, ab, np.tile(powered, (b, 1)), initial_temps_k=temps0
    )


class TestThermalAccuracy:
    def test_base_rows_bit_identical(self, rig, population):
        _, predictors = rig
        rng = np.random.default_rng(11)
        for chip, pred in zip(population, predictors):
            ev = DeltaEvaluator(pred)
            freq, act, powered, temps0 = _random_base_state(
                rng, chip.num_cores
            )
            base = ev.solve_base(freq, act, powered, temps0)
            dense = pred.predict_batch(
                freq[None], act[None], powered[None], initial_temps_k=temps0
            )
            np.testing.assert_array_equal(base.final, dense)

    def test_candidate_error_within_bound(self, rig, population):
        _, predictors = rig
        rng = np.random.default_rng(7)
        checked = 0
        for chip, pred in zip(population, predictors):
            ev = DeltaEvaluator(pred)
            n = chip.num_cores
            for _ in range(4):
                freq, act, powered, temps0 = _random_base_state(rng, n)
                cand = np.flatnonzero(powered & (freq == 0))[:20]
                if cand.size == 0:
                    continue
                newf, newa = 2.8, 0.9
                dense = _dense_candidates(
                    pred, freq, act, powered, temps0, cand, newf, newa
                )
                base = ev.solve_base(freq, act, powered, temps0)
                new_dyn = pred.power_model.dynamic.power_w(newf, newa)
                got = ev.candidate_temps(
                    base,
                    np.zeros(cand.size, dtype=np.intp),
                    cand,
                    np.full(cand.size, new_dyn),
                )
                assert np.abs(got - dense).max() < LINEARIZATION_BOUND_K
                checked += cand.size
        assert checked > 100  # the sweep actually exercised candidates

    def test_exact_without_leakage_feedback(self, floorplan, population):
        """With ``leakage_iterations=0`` the rank-1 seed is the whole
        answer: no feedback pass exists to linearize."""
        net = ThermalRCNetwork(floorplan)
        pred = ThermalPredictor.learn(
            net, PowerModel.for_chip(population[0]), leakage_iterations=0
        )
        ev = DeltaEvaluator(pred)
        rng = np.random.default_rng(1)
        freq, act, powered, temps0 = _random_base_state(
            rng, population[0].num_cores
        )
        cand = np.flatnonzero(powered & (freq == 0))[:10]
        dense = _dense_candidates(
            pred, freq, act, powered, temps0, cand, 2.5, 0.7
        )
        base = ev.solve_base(freq, act, powered, temps0)
        new_dyn = pred.power_model.dynamic.power_w(2.5, 0.7)
        got = ev.candidate_temps(
            base,
            np.zeros(cand.size, dtype=np.intp),
            cand,
            np.full(cand.size, new_dyn),
        )
        np.testing.assert_allclose(got, dense, atol=1e-9)

    def test_multi_lane_base_matches_per_lane(self, rig, population):
        """Stacked lanes solve to the same values as solo lanes (up to
        the last-bit GEMV/GEMM rounding difference a one-row matmul
        carries — the dense ``predict_batch`` has the same property)."""
        _, predictors = rig
        pred = predictors[0]
        ev = DeltaEvaluator(pred)
        rng = np.random.default_rng(3)
        n = population[0].num_cores
        states = [_random_base_state(rng, n) for _ in range(3)]
        stacked = ev.solve_base(
            np.stack([s[0] for s in states]),
            np.stack([s[1] for s in states]),
            np.stack([s[2] for s in states]),
            np.stack([s[3] for s in states]),
        )
        for lane, (freq, act, powered, temps0) in enumerate(states):
            solo = ev.solve_base(freq, act, powered, temps0)
            np.testing.assert_allclose(
                stacked.final[lane], solo.final[0], rtol=0, atol=1e-10
            )
            cand = np.flatnonzero(powered & (freq == 0))[:8]
            if cand.size == 0:
                continue
            new_dyn = pred.power_model.dynamic.power_w(2.6, 0.8)
            lanes = np.full(cand.size, lane, dtype=np.intp)
            got = ev.candidate_temps(
                stacked, lanes, cand, np.full(cand.size, new_dyn)
            )
            want = ev.candidate_temps(
                solo,
                np.zeros(cand.size, dtype=np.intp),
                cand,
                np.full(cand.size, new_dyn),
            )
            np.testing.assert_allclose(got, want, rtol=0, atol=1e-10)


def build_state(chip, floorplan, influence, num_threads=16, seed=0):
    mix = make_mix(
        ["bodytrack", "x264"], num_threads, np.random.default_rng(seed)
    )
    dcm = temperature_optimized_dcm(floorplan, num_threads, influence)
    return ChipState(chip.num_cores, mix.threads, dcm)


@pytest.fixture(scope="module")
def mapper_rig(population, floorplan, aging_table, rig):
    influence, predictors = rig
    estimator = OnlineHealthEstimator(predictors[0], aging_table)
    return influence, estimator, population[0]


def _map_both_ways(mapper_rig, floorplan, fmax=None, **mapper_kwargs):
    """Run one mapping problem with the delta engine on and off;
    returns ((state, unmapped), (state, unmapped)).

    ``min_dense_rows=0`` forces every round onto the delta path — the
    single-lane problems here sit below the default cost gate, and the
    point is to compare the two arithmetic routes, not the gate.
    """
    influence, estimator, chip = mapper_rig
    fmax = chip.fmax_init_ghz if fmax is None else fmax
    outcomes = []
    for enabled in (True, False):
        state = build_state(chip, floorplan, influence)
        with delta_options(enabled=enabled, min_dense_rows=0):
            unmapped = HayatMapper(estimator, **mapper_kwargs).map_threads(
                state, fmax, np.ones(chip.num_cores), 0.5, 0.0
            )
        outcomes.append((state, unmapped))
    return outcomes


class TestMapperDecisionIdentity:
    def test_delta_matches_dense_decisions(self, mapper_rig, floorplan):
        (on_state, on_unmapped), (off_state, off_unmapped) = _map_both_ways(
            mapper_rig, floorplan
        )
        assert on_unmapped == off_unmapped == []
        np.testing.assert_array_equal(on_state.assignment, off_state.assignment)
        np.testing.assert_array_equal(on_state.freq_ghz, off_state.freq_ghz)

    def test_counters_and_timer_recorded(self, mapper_rig, floorplan):
        influence, estimator, chip = mapper_rig
        state = build_state(chip, floorplan, influence)
        registry = MetricsRegistry()
        with use_registry(registry), delta_options(
            enabled=True, min_dense_rows=0
        ):
            HayatMapper(estimator).map_threads(
                state, chip.fmax_init_ghz, np.ones(chip.num_cores), 0.5, 0.0
            )
        snapshot = registry.snapshot()
        assert snapshot.counters["sim.delta_rounds"] == 16
        assert snapshot.counters["aging.walk_bracket_reuse"] > 0
        assert snapshot.timers["sim.delta_eval"].count == 16

    def test_escape_hatch_restores_dense(self, mapper_rig, floorplan):
        influence, estimator, chip = mapper_rig
        state = build_state(chip, floorplan, influence)
        registry = MetricsRegistry()
        with use_registry(registry), delta_options(enabled=False):
            HayatMapper(estimator).map_threads(
                state, chip.fmax_init_ghz, np.ones(chip.num_cores), 0.5, 0.0
            )
        snapshot = registry.snapshot()
        assert "sim.delta_rounds" not in snapshot.counters
        assert "sim.delta_eval" not in snapshot.timers
        assert snapshot.counters.get("aging.walk_bracket_reuse", 0) == 0

    def test_strict_infeasible_still_raises(self, mapper_rig, floorplan):
        influence, estimator, chip = mapper_rig
        state = build_state(chip, floorplan, influence)
        slow = np.full(chip.num_cores, 0.5)
        with delta_options(enabled=True, min_dense_rows=0):
            with pytest.raises(MappingError):
                HayatMapper(estimator, strict=True).map_threads(
                    state, slow, np.ones(chip.num_cores), 0.5, 0.0
                )

    def test_nonstrict_unmapped_matches_dense(self, mapper_rig, floorplan):
        slow = np.full(mapper_rig[2].num_cores, 0.5)
        (on_state, on_unmapped), (off_state, off_unmapped) = _map_both_ways(
            mapper_rig, floorplan, fmax=slow
        )
        assert on_unmapped == off_unmapped
        assert len(on_unmapped) == 16
        np.testing.assert_array_equal(on_state.assignment, off_state.assignment)

    def test_all_overshoot_fallback_matches_dense(self, mapper_rig, floorplan):
        """With an impossible Tsafe every candidate overshoots; both
        paths must fall back to the same least-bad placement."""
        (on_state, on_unmapped), (off_state, off_unmapped) = _map_both_ways(
            mapper_rig, floorplan, tsafe_k=300.0
        )
        assert on_unmapped == off_unmapped
        np.testing.assert_array_equal(on_state.assignment, off_state.assignment)

    def test_subclassed_estimator_bypasses_delta(self, mapper_rig, floorplan):
        """A subclass may override estimation semantics the evaluator
        replays, so engagement requires the exact classes."""
        influence, estimator, chip = mapper_rig

        class TweakedEstimator(OnlineHealthEstimator):
            pass

        tweaked = TweakedEstimator(estimator.predictor, estimator.table)
        state = build_state(chip, floorplan, influence)
        registry = MetricsRegistry()
        with use_registry(registry), delta_options(
            enabled=True, min_dense_rows=0
        ):
            HayatMapper(tweaked).map_threads(
                state, chip.fmax_init_ghz, np.ones(chip.num_cores), 0.5, 0.0
            )
        assert "sim.delta_rounds" not in registry.snapshot().counters

    def test_cost_gate_keeps_small_rounds_dense(self, mapper_rig, floorplan):
        """Under the default gate a single 64-core lane never reaches
        ``min_dense_rows``, so the engine (though enabled) stays on the
        dense kernels — and still places identically."""
        influence, estimator, chip = mapper_rig
        state = build_state(chip, floorplan, influence)
        registry = MetricsRegistry()
        with use_registry(registry), delta_options(enabled=True):
            HayatMapper(estimator).map_threads(
                state, chip.fmax_init_ghz, np.ones(chip.num_cores), 0.5, 0.0
            )
        assert "sim.delta_rounds" not in registry.snapshot().counters
        forced = build_state(chip, floorplan, influence)
        with delta_options(enabled=True, min_dense_rows=0):
            HayatMapper(estimator).map_threads(
                forced, chip.fmax_init_ghz, np.ones(chip.num_cores), 0.5, 0.0
            )
        np.testing.assert_array_equal(state.assignment, forced.assignment)


class TestBatchedLanes:
    def test_mixed_lanes_match_sequential_under_delta(
        self, population, floorplan, aging_table, rig
    ):
        """Lanes with different thread counts, health maps, and warm
        starts: the batched engine under the delta path must equal solo
        ``map_threads`` (which also runs the delta path) bit for bit."""
        influence, predictors = rig
        rng = np.random.default_rng(5)
        lanes, twins = [], []
        for i, (chip, pred, count) in enumerate(
            zip(population, predictors, (12, 16, 20))
        ):
            est = OnlineHealthEstimator(pred, aging_table)
            health = rng.uniform(0.9, 1.0, chip.num_cores)
            fmax = chip.fmax_init_ghz * health
            temps = (
                rng.uniform(320.0, 350.0, chip.num_cores) if i % 2 else None
            )
            pair = []
            for _ in range(2):
                pair.append(
                    MapperLane(
                        mapper=HayatMapper(est),
                        state=build_state(
                            chip, floorplan, influence, num_threads=count,
                            seed=i,
                        ),
                        fmax_now_ghz=fmax,
                        health_now=health,
                        elapsed_years=0.5 * i,
                        initial_temps_k=temps,
                    )
                )
            lanes.append(pair[0])
            twins.append(pair[1])
        with delta_options(enabled=True, min_dense_rows=0):
            got_unmapped = map_threads_batch(lanes, 0.5)
            for lane, twin, got in zip(lanes, twins, got_unmapped):
                want = twin.mapper.map_threads(
                    twin.state,
                    twin.fmax_now_ghz,
                    twin.health_now,
                    0.5,
                    twin.elapsed_years,
                    initial_temps_k=twin.initial_temps_k,
                )
                assert got == want
                np.testing.assert_array_equal(
                    lane.state.assignment, twin.state.assignment
                )
                np.testing.assert_array_equal(
                    lane.state.freq_ghz, twin.state.freq_ghz
                )

    def test_batched_delta_counters(
        self, population, floorplan, aging_table, rig
    ):
        influence, predictors = rig
        lanes = [
            MapperLane(
                mapper=HayatMapper(
                    OnlineHealthEstimator(pred, aging_table)
                ),
                state=build_state(
                    chip, floorplan, influence, num_threads=16, seed=9
                ),
                fmax_now_ghz=chip.fmax_init_ghz,
                health_now=np.ones(chip.num_cores),
                elapsed_years=0.0,
            )
            for chip, pred in zip(population, predictors)
        ]
        registry = MetricsRegistry()
        with use_registry(registry), delta_options(
            enabled=True, min_dense_rows=0
        ):
            map_threads_batch(lanes, 0.5)
        snapshot = registry.snapshot()
        assert snapshot.counters["sim.delta_rounds"] > 0
        assert snapshot.counters["aging.walk_bracket_reuse"] > 0
        assert snapshot.timers["sim.delta_eval"].count > 0


class TestOptionsPlumbing:
    def test_defaults_enabled(self):
        assert DeltaOptions() == DeltaOptions(enabled=True)
        assert current_delta_options().enabled

    def test_nested_contexts_inherit_and_restore(self):
        with delta_options(enabled=False):
            assert not current_delta_options().enabled
            with delta_options():
                assert not current_delta_options().enabled
            with delta_options(enabled=True):
                assert current_delta_options().enabled
        assert current_delta_options().enabled

    def test_min_dense_rows_inherits_through_nesting(self):
        """The campaign wrappers re-wrap with ``enabled`` only, so a
        test's outer gate override must survive the inner context."""
        default = current_delta_options().min_dense_rows
        assert default > 0
        with delta_options(min_dense_rows=0):
            with delta_options(enabled=True):
                assert current_delta_options().min_dense_rows == 0
        assert current_delta_options().min_dense_rows == default

    def test_configure_process_level(self):
        try:
            configure_delta_eval(enabled=False)
            assert not current_delta_options().enabled
            with delta_options(enabled=True):
                assert current_delta_options().enabled
        finally:
            configure_delta_eval(enabled=True)

    def test_config_field_default(self):
        assert SimulationConfig().delta_candidates is True


class TestCampaignIdentity:
    def test_campaign_bit_identical_on_and_off(self, aging_table):
        cfg = SimulationConfig(
            lifetime_years=1.0, epoch_years=0.5, window_s=10.0, seed=3
        )
        population = generate_population(3, seed=29)
        runs = {}
        for enabled in (True, False):
            with delta_options(min_dense_rows=0):
                runs[enabled] = run_campaign(
                    [HayatManager()],
                    config=dataclass_replace(cfg, delta_candidates=enabled),
                    population=population,
                    table=aging_table,
                )
        for a, b in zip(
            runs[True].results["hayat"], runs[False].results["hayat"]
        ):
            assert result_to_dict(a) == result_to_dict(b)

    def test_kill_mid_campaign_resume_with_delta(self, aging_table, tmp_path):
        """Checkpoint resume under the delta engine: the resumed
        campaign reproduces the uninterrupted one bit for bit."""
        cfg = tiny_config()
        population = generate_population(3, seed=29)
        path = str(tmp_path / "campaign.jsonl")
        with delta_options(enabled=True, min_dense_rows=0):
            reference = run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=aging_table,
            )
            with pytest.raises(CampaignJobError):
                run_campaign(
                    [InterruptedHayat("chip-01")],
                    config=cfg, population=population, table=aging_table,
                    checkpoint=path,
                )
            assert len(CampaignCheckpoint(path)) == 1
            resumed = run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=aging_table,
                checkpoint=path,
            )
        for a, b in zip(
            reference.results["hayat"], resumed.results["hayat"]
        ):
            assert result_to_dict(a) == result_to_dict(b)


def dataclass_replace(cfg, **changes):
    import dataclasses

    return dataclasses.replace(cfg, **changes)
