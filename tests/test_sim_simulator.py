"""Lifetime simulator: integration across all substrates."""

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig
from repro.util.constants import AMBIENT_KELVIN


@pytest.fixture(scope="module")
def short_cfg():
    return SimulationConfig(
        lifetime_years=1.5,
        epoch_years=0.5,
        dark_fraction_min=0.5,
        window_s=5.0,
        seed=3,
    )


@pytest.fixture(scope="module")
def hayat_result(chip, aging_table, short_cfg):
    ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
    return LifetimeSimulator(short_cfg).run(ctx, HayatManager())


class TestLifetimeRun:
    def test_epoch_count(self, hayat_result, short_cfg):
        assert len(hayat_result.epochs) == short_cfg.num_epochs == 3

    def test_health_monotone_nonincreasing(self, hayat_result):
        traj = hayat_result.health_trajectory()
        assert (np.diff(traj, axis=0) <= 1e-12).all()

    def test_health_actually_degrades(self, hayat_result):
        assert hayat_result.health_trajectory()[-1].min() < 1.0

    def test_temperatures_physical(self, hayat_result):
        for epoch in hayat_result.epochs:
            assert epoch.avg_temp_k > AMBIENT_KELVIN
            assert epoch.peak_temp_k < 430.0
            assert (epoch.worst_temps_k >= AMBIENT_KELVIN - 1e-9).all()

    def test_duties_are_probabilities(self, hayat_result):
        for epoch in hayat_result.epochs:
            assert (epoch.duties >= 0).all() and (epoch.duties <= 1).all()

    def test_throughput_positive(self, hayat_result):
        assert all(e.total_ips > 0 for e in hayat_result.epochs)

    def test_deterministic_replay(self, chip, aging_table, short_cfg):
        runs = []
        for _ in range(2):
            ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
            runs.append(LifetimeSimulator(short_cfg).run(ctx, HayatManager()))
        np.testing.assert_array_equal(
            runs[0].health_trajectory(), runs[1].health_trajectory()
        )
        assert runs[0].total_dtm_events() == runs[1].total_dtm_events()

    def test_policies_see_identical_workloads(self, chip, aging_table, short_cfg):
        """The mix draw depends only on the config seed and chip, never
        on the policy — required for fair normalization."""
        mixes = {}
        for policy in (HayatManager(), VAAManager()):
            ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
            result = LifetimeSimulator(short_cfg).run(ctx, policy)
            mixes[policy.name] = [e.mix_description for e in result.epochs]
        assert mixes["hayat"] == mixes["vaa"]


class TestDerivedMetrics:
    def test_fmax_trajectory_shapes(self, hayat_result):
        assert hayat_result.fmax_trajectory_ghz().shape == (3, 64)
        assert hayat_result.chip_fmax_trajectory_ghz().shape == (3,)

    def test_aging_rates_in_unit_range(self, hayat_result):
        assert 0.0 <= hayat_result.chip_fmax_aging_rate() < 1.0
        assert 0.0 <= hayat_result.avg_fmax_aging_rate() < 1.0

    def test_lifetime_at_loose_requirement_is_full(self, hayat_result):
        loose = 0.5  # GHz, never violated
        assert hayat_result.lifetime_at_requirement_years(loose) == pytest.approx(
            1.5
        )

    def test_lifetime_at_impossible_requirement_is_zero(self, hayat_result):
        impossible = hayat_result.fmax_init_ghz.mean() + 1.0
        assert hayat_result.lifetime_at_requirement_years(impossible) == 0.0

    def test_lifetime_interpolates(self, hayat_result):
        """A requirement between start and end average frequency gives a
        lifetime strictly inside the simulated span."""
        start = float(hayat_result.fmax_init_ghz.mean())
        end = float(hayat_result.avg_fmax_trajectory_ghz()[-1])
        target = 0.5 * (start + end)
        lifetime = hayat_result.lifetime_at_requirement_years(target)
        assert 0.0 < lifetime < 1.5


class TestSettleClampConsistency:
    def test_final_settle_solve_is_clamped(self, chip, aging_table, monkeypatch):
        """Regression: the settle phase's *last* steady-state solve used
        to merge into the aging input unclamped, bypassing the reaction
        ceiling applied to every earlier round.  A steady state DTM
        would intercept must never exceed ``tsafe + headroom`` in
        ``worst_temps_k``.

        The coupled solver is stubbed to report a steady state far past
        the ceiling while DTM reports immediate quiescence (so that
        solve is the settle phase's last), and the window integrator is
        stubbed cold so only the settle merge feeds ``worst_temps_k``.
        """
        import repro.sim.simulator as simulator_module
        from repro.dtm import DTMReport

        cfg = SimulationConfig(
            lifetime_years=0.5, epoch_years=0.5, dark_fraction_min=0.5,
            window_s=5.0, seed=3,
        )
        sim = LifetimeSimulator(cfg)
        ceiling = sim.dtm.tsafe_k + sim.dtm.headroom_k

        real_solve = simulator_module.solve_coupled_steady_state

        def overheated_solve(network, power_model, freq, activity, powered_on,
                             **kwargs):
            temps, breakdown = real_solve(
                network, power_model, freq, activity, powered_on, **kwargs
            )
            return temps + (ceiling + 40.0 - temps.min()), breakdown

        class ColdIntegrator:
            """Window stub: every step lands at ambient, so the window
            contributes nothing to ``worst_temps_k``."""

            def __init__(self, network, dt_s):
                self.network = network

            def core_temperatures(self, all_nodes):
                return np.asarray(all_nodes)[: self.network.num_cores]

            def step(self, all_nodes, core_power_w):
                return np.full(
                    self.network.num_nodes, self.network.config.ambient_k
                )

        monkeypatch.setattr(
            simulator_module, "solve_coupled_steady_state", overheated_solve
        )
        monkeypatch.setattr(
            simulator_module, "TransientIntegrator", ColdIntegrator
        )
        monkeypatch.setattr(
            sim.dtm, "enforce", lambda state, temps, fmax: DTMReport()
        )

        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        result = sim.run(ctx, HayatManager())

        worst = result.epochs[0].worst_temps_k
        assert float(worst.max()) <= ceiling + 1e-9
        # The settle phase really did see the overheated solve.
        assert float(worst.max()) == pytest.approx(ceiling)
