"""Dark core maps and chip state invariants."""

import numpy as np
import pytest

from repro.mapping import ChipState, DarkCoreMap
from repro.workload import make_mix


@pytest.fixture()
def threads():
    return make_mix(["bodytrack", "x264"], 8, np.random.default_rng(0)).threads


@pytest.fixture()
def state(threads):
    dcm = DarkCoreMap.from_on_indices(16, np.arange(8))
    return ChipState(16, threads, dcm)


class TestDarkCoreMap:
    def test_counts(self):
        dcm = DarkCoreMap.from_on_indices(16, [0, 3, 5])
        assert dcm.num_on == 3
        assert dcm.num_dark == 13
        assert dcm.dark_fraction == pytest.approx(13 / 16)

    def test_index_views(self):
        dcm = DarkCoreMap.from_on_indices(4, [1, 2])
        np.testing.assert_array_equal(dcm.on_indices(), [1, 2])
        np.testing.assert_array_equal(dcm.dark_indices(), [0, 3])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            DarkCoreMap(np.zeros((2, 2), dtype=bool))


class TestPlacement:
    def test_place_and_query(self, state):
        state.place(0, 3, 2.5)
        assert state.core_of_thread(0) == 3
        assert state.assignment[3] == 0
        assert state.freq_ghz[3] == 2.5

    def test_one_thread_per_core(self, state):
        state.place(0, 3, 2.5)
        with pytest.raises(ValueError, match="Eq. 5"):
            state.place(1, 3, 2.5)

    def test_thread_mapped_once(self, state):
        state.place(0, 3, 2.5)
        with pytest.raises(ValueError, match="already mapped"):
            state.place(0, 4, 2.5)

    def test_no_placement_on_dark_core(self, state):
        with pytest.raises(ValueError, match="dark"):
            state.place(0, 12, 2.5)

    def test_unplace_returns_thread(self, state):
        state.place(2, 5, 2.8)
        assert state.unplace(5) == 2
        assert state.assignment[5] == -1
        assert state.freq_ghz[5] == 0.0

    def test_unplace_idle_core_rejected(self, state):
        with pytest.raises(ValueError, match="idle"):
            state.unplace(5)

    def test_validate_passes_for_legal_state(self, state):
        state.place(0, 0, 2.5)
        state.place(1, 1, 2.5)
        state.validate()


class TestMigration:
    def test_migrate_transfers_power_state(self, state):
        state.place(0, 3, 2.5)
        state.migrate(3, 12)  # 12 was dark
        assert state.core_of_thread(0) == 12
        assert state.powered_on[12]
        assert not state.powered_on[3]
        assert state.freq_ghz[12] == 2.5

    def test_non_grows_never(self, state):
        before = state.dcm.num_on
        state.place(0, 3, 2.5)
        state.migrate(3, 12)
        assert state.dcm.num_on == before

    def test_migrate_to_busy_core_rejected(self, state):
        state.place(0, 3, 2.5)
        state.place(1, 4, 2.5)
        with pytest.raises(ValueError, match="busy"):
            state.migrate(3, 4)

    def test_migrate_from_idle_rejected(self, state):
        with pytest.raises(ValueError, match="idle"):
            state.migrate(3, 12)


class TestPowerManagement:
    def test_power_cycle(self, state):
        state.power_on(12)
        assert state.powered_on[12]
        state.power_off(12)
        assert not state.powered_on[12]

    def test_cannot_gate_busy_core(self, state):
        state.place(0, 3, 2.5)
        with pytest.raises(ValueError, match="runs a thread"):
            state.power_off(3)

    def test_set_frequency_throttle_flag(self, state):
        state.place(0, 3, 2.5)
        state.set_frequency(3, 1.75, throttled=True)
        assert state.freq_ghz[3] == 1.75
        assert state.throttled[3]


class TestVectors:
    def test_activity_vector_zero_when_idle(self, state):
        activity = state.activity_vector(0.0)
        np.testing.assert_array_equal(activity, np.zeros(16))

    def test_activity_vector_busy_cores(self, state):
        state.place(0, 2, 2.5)
        activity = state.activity_vector(1.0)
        assert activity[2] > 0
        assert activity[(np.arange(16) != 2)].sum() == 0

    def test_duty_vector(self, state, threads):
        state.place(0, 2, 2.5)
        duty = state.duty_vector()
        assert duty[2] == threads[0].duty_cycle
        assert duty.sum() == pytest.approx(threads[0].duty_cycle)

    def test_idle_on_cores(self, state):
        state.place(0, 2, 2.5)
        idle = state.idle_on_cores()
        assert 2 not in idle
        assert len(idle) == 7

    def test_validate_detects_overspeed(self, state):
        state.place(0, 2, 3.9)
        fmax = np.full(16, 3.0)
        with pytest.raises(AssertionError, match="safe frequency"):
            state.validate(fmax)
