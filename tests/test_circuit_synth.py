"""Core synthesis and critical-path extraction."""

import numpy as np
import pytest

from repro.circuit import synthesize_core
from repro.circuit.signalprob import (
    gate_stress_duties,
    propagate_signal_probabilities,
)


@pytest.fixture(scope="module")
def core():
    return synthesize_core(seed=7, num_gates=200, num_critical_paths=5)


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_core(seed=3, num_gates=100)
        b = synthesize_core(seed=3, num_gates=100)
        assert [g.output for g in a.netlist.gates] == [
            g.output for g in b.netlist.gates
        ]
        assert a.unaged_critical_delay_ps == b.unaged_critical_delay_ps

    def test_different_seeds_differ(self):
        a = synthesize_core(seed=1, num_gates=100)
        b = synthesize_core(seed=2, num_gates=100)
        assert a.unaged_critical_delay_ps != b.unaged_critical_delay_ps

    def test_netlist_is_valid(self, core):
        core.netlist.validate()

    def test_requested_path_count(self, core):
        assert len(core.critical_paths) == 5

    def test_paths_sorted_by_delay(self, core):
        delays = [p.unaged_delay_ps for p in core.critical_paths]
        assert delays == sorted(delays, reverse=True)
        assert core.unaged_critical_delay_ps == delays[0]


class TestCriticalPaths:
    def test_path_elements_align(self, core):
        for path in core.critical_paths:
            assert len(path.gate_indices) == len(path.element_delays_ps)
            assert len(path.gate_indices) == len(path.element_duties)

    def test_path_delay_matches_cells(self, core):
        for path in core.critical_paths:
            cell_delays = [
                core.netlist.cell_of(core.netlist.gates[g]).delay_ps
                for g in path.gate_indices
            ]
            assert path.unaged_delay_ps == pytest.approx(sum(cell_delays))

    def test_duties_are_probabilities(self, core):
        for path in core.critical_paths:
            assert all(0.0 <= d <= 1.0 for d in path.element_duties)

    def test_paths_are_connected_chains(self, core):
        """Consecutive gates on a path are actually wired together."""
        for path in core.critical_paths:
            gates = [core.netlist.gates[g] for g in path.gate_indices]
            for upstream, downstream in zip(gates, gates[1:]):
                assert upstream.output in downstream.inputs


class TestSignalProbabilities:
    def test_all_nets_covered(self, core):
        probs = propagate_signal_probabilities(core.netlist, {})
        driven = core.netlist.all_outputs()
        for net in driven:
            assert net in probs

    def test_defaults_to_half(self, core):
        probs = propagate_signal_probabilities(core.netlist, {})
        for net in core.netlist.primary_inputs():
            assert probs[net] == 0.5

    def test_biased_inputs_shift_duties(self, core):
        low = propagate_signal_probabilities(
            core.netlist, {n: 0.1 for n in core.netlist.primary_inputs()}
        )
        high = propagate_signal_probabilities(
            core.netlist, {n: 0.9 for n in core.netlist.primary_inputs()}
        )
        duty_low = np.mean(gate_stress_duties(core.netlist, low))
        duty_high = np.mean(gate_stress_duties(core.netlist, high))
        assert duty_low != pytest.approx(duty_high)

    def test_rejects_bad_probability(self, core):
        inputs = core.netlist.primary_inputs()
        with pytest.raises(ValueError):
            propagate_signal_probabilities(core.netlist, {inputs[0]: 1.5})
