"""Communication-aware mapping extension."""

import numpy as np
import pytest

from repro.core import HayatMapper, OnlineHealthEstimator
from repro.core.dcm import temperature_optimized_dcm
from repro.mapping import ChipState
from repro.noc import MeshTopology
from repro.power import PowerModel
from repro.thermal import ThermalPredictor, ThermalRCNetwork
from repro.workload import make_mix


@pytest.fixture(scope="module")
def setup(chip, floorplan, aging_table):
    net = ThermalRCNetwork(floorplan)
    pm = PowerModel.for_chip(chip)
    estimator = OnlineHealthEstimator(ThermalPredictor.learn(net, pm), aging_table)
    mesh = MeshTopology(floorplan)
    return estimator, net.influence_matrix(), mesh


def run_mapping(chip, floorplan, estimator, influence, mesh, comm_weight):
    mix = make_mix(["dedup", "ferret"], 16, np.random.default_rng(4))
    dcm = temperature_optimized_dcm(floorplan, 16, influence)
    state = ChipState(64, mix.threads, dcm)
    mapper = HayatMapper(
        estimator,
        comm_weight=comm_weight,
        hop_matrix=mesh.hop_matrix if comm_weight > 0 else None,
    )
    mapper.map_threads(state, chip.fmax_init_ghz, np.ones(64), 0.5, 0.0)
    return state


def app_dispersion(state, mesh):
    """Mean intra-application hop distance of a mapping."""
    from collections import defaultdict

    by_app = defaultdict(list)
    for core in np.flatnonzero(state.assignment >= 0):
        by_app[state.threads[state.assignment[core]].app_name].append(core)
    total, pairs = 0.0, 0
    for cores in by_app.values():
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                total += mesh.hop_count(a, b)
                pairs += 1
    return total / pairs if pairs else 0.0


class TestCommAwareMapping:
    def test_weight_zero_matches_default(self, setup, chip, floorplan):
        estimator, influence, mesh = setup
        a = run_mapping(chip, floorplan, estimator, influence, mesh, 0.0)
        mix = make_mix(["dedup", "ferret"], 16, np.random.default_rng(4))
        dcm = temperature_optimized_dcm(floorplan, 16, influence)
        b = ChipState(64, mix.threads, dcm)
        HayatMapper(estimator).map_threads(
            b, chip.fmax_init_ghz, np.ones(64), 0.5, 0.0
        )
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_positive_weight_tightens_applications(self, setup, chip, floorplan):
        estimator, influence, mesh = setup
        loose = run_mapping(chip, floorplan, estimator, influence, mesh, 0.0)
        tight = run_mapping(chip, floorplan, estimator, influence, mesh, 6.0)
        assert app_dispersion(tight, mesh) < app_dispersion(loose, mesh)

    def test_constraints_still_respected(self, setup, chip, floorplan):
        estimator, influence, mesh = setup
        state = run_mapping(chip, floorplan, estimator, influence, mesh, 6.0)
        state.validate(chip.fmax_init_ghz)
        assert (state.assignment >= 0).sum() == 16

    def test_weight_requires_hop_matrix(self, setup):
        estimator, _, _ = setup
        with pytest.raises(ValueError, match="hop_matrix"):
            HayatMapper(estimator, comm_weight=1.0)

    def test_negative_weight_rejected(self, setup):
        estimator, _, mesh = setup
        with pytest.raises(ValueError):
            HayatMapper(estimator, comm_weight=-1.0, hop_matrix=mesh.hop_matrix)
