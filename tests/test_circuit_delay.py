"""Alpha-power-law delay degradation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import alpha_power_delay_factor, path_delay_ps


class TestDelayFactor:
    def test_unity_at_zero_shift(self):
        assert alpha_power_delay_factor(0.0) == pytest.approx(1.0)

    def test_monotone_in_shift(self):
        shifts = np.linspace(0.0, 0.3, 20)
        factors = alpha_power_delay_factor(shifts)
        assert (np.diff(factors) > 0).all()

    def test_known_value(self):
        # 20 % overdrive loss with alpha=1 doubles nothing: factor =
        # (0.81/0.61)^1.0.
        out = alpha_power_delay_factor(0.2, vdd=1.13, vth_nominal=0.32, alpha=1.0)
        assert out == pytest.approx(0.81 / 0.61)

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            alpha_power_delay_factor(-0.01)

    def test_rejects_overdrive_exhaustion(self):
        with pytest.raises(ValueError, match="overdrive"):
            alpha_power_delay_factor(0.81)

    def test_rejects_vdd_below_vth(self):
        with pytest.raises(ValueError):
            alpha_power_delay_factor(0.0, vdd=0.3, vth_nominal=0.32)


class TestPathDelay:
    def test_sum_without_aging(self):
        delays = np.array([10.0, 20.0, 30.0])
        assert path_delay_ps(delays, np.zeros(3)) == pytest.approx(60.0)

    def test_elementwise_aging(self):
        delays = np.array([10.0, 10.0])
        shifts = np.array([0.0, 0.1])
        aged = path_delay_ps(delays, shifts)
        expected = 10.0 + 10.0 * alpha_power_delay_factor(0.1)
        assert aged == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            path_delay_ps(np.zeros(2) + 1, np.zeros(3))

    def test_rejects_nonpositive_unaged_delay(self):
        with pytest.raises(ValueError):
            path_delay_ps(np.array([0.0]), np.array([0.0]))


@settings(max_examples=40, deadline=None)
@given(
    shift=st.floats(0.0, 0.4),
    alpha=st.floats(1.0, 2.0),
)
def test_property_factor_at_least_one(shift, alpha):
    factor = alpha_power_delay_factor(shift, alpha=alpha)
    assert factor >= 1.0
