"""Execute every python block of docs/tutorial.md.

Documentation that cannot run is worse than none; the tutorial's code
blocks share one namespace (like a reader following along) and every
``assert`` in them is a real check.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parents[1] / "docs" / "tutorial.md"


def extract_blocks() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


def test_tutorial_has_blocks():
    assert len(extract_blocks()) >= 5


def test_tutorial_snippets_execute():
    namespace: dict = {}
    for index, block in enumerate(extract_blocks()):
        try:
            exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {index} failed: {error!r}\n{block}")
