"""Deterministic seeded stream derivation."""

import numpy as np
import pytest

from repro.util.rng import SeedSequenceFactory, derive_rng


def test_same_key_same_stream():
    a = SeedSequenceFactory(7).rng("variation", 3).random(5)
    b = SeedSequenceFactory(7).rng("variation", 3).random(5)
    np.testing.assert_array_equal(a, b)


def test_different_keys_differ():
    a = SeedSequenceFactory(7).rng("variation", 3).random(5)
    b = SeedSequenceFactory(7).rng("variation", 4).random(5)
    assert not np.array_equal(a, b)


def test_different_root_seeds_differ():
    a = SeedSequenceFactory(7).rng("x").random(5)
    b = SeedSequenceFactory(8).rng("x").random(5)
    assert not np.array_equal(a, b)


def test_string_and_int_keys_mix():
    rng = SeedSequenceFactory(0).rng("chip", 12, "workload")
    assert isinstance(rng, np.random.Generator)


def test_string_key_is_stable_across_processes():
    # FNV-1a hashing must not depend on PYTHONHASHSEED: the derived
    # state for a given string key is a fixed constant.
    state_a = SeedSequenceFactory(1).seed_sequence("abc").generate_state(1)[0]
    state_b = SeedSequenceFactory(1).seed_sequence("abc").generate_state(1)[0]
    assert state_a == state_b


def test_child_factory_namespaces():
    root = SeedSequenceFactory(42)
    child = root.child("campaign")
    a = child.rng("chip", 0).random(3)
    b = root.rng("chip", 0).random(3)
    assert not np.array_equal(a, b)


def test_bool_key_rejected():
    with pytest.raises(TypeError):
        SeedSequenceFactory(1).rng(True)


def test_bool_root_seed_rejected():
    with pytest.raises(TypeError):
        SeedSequenceFactory(True)


def test_float_key_rejected():
    with pytest.raises(TypeError):
        SeedSequenceFactory(1).rng(1.5)


def test_derive_rng_matches_factory():
    a = derive_rng(9, "k").random(4)
    b = SeedSequenceFactory(9).rng("k").random(4)
    np.testing.assert_array_equal(a, b)
