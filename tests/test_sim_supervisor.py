"""Campaign supervision: retries, timeouts, partial results.

The injected-fault policies live at module level so they pickle into
spawn workers; cross-attempt state (fail once, then succeed) lives in
sentinel files because a retried job may run in a fresh process.
"""

import os
import time

import numpy as np
import pytest

from repro.core import HayatManager
from repro.obs import MetricsRegistry, use_registry
from repro.sim import (
    CampaignJobError,
    SimulationConfig,
    run_campaign,
)
from repro.variation import generate_population


def tiny_config(seed: int = 3) -> SimulationConfig:
    return SimulationConfig(
        lifetime_years=0.5, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=3.0, seed=seed,
    )


class FlakyPolicy(HayatManager):
    """Raises on ``crash_chip`` until the sentinel file exists."""

    name = "flaky"

    def __init__(self, crash_chip: str, sentinel: str):
        super().__init__()
        self.crash_chip = crash_chip
        self.sentinel = sentinel

    def prepare_epoch(self, ctx, mix, epoch_years):
        if ctx.chip.chip_id == self.crash_chip:
            if not os.path.exists(self.sentinel):
                with open(self.sentinel, "w") as handle:
                    handle.write("armed\n")
                raise RuntimeError("injected fault")
        return super().prepare_epoch(ctx, mix, epoch_years)


class AlwaysCrashPolicy(HayatManager):
    """Raises on ``crash_chip`` every single attempt."""

    name = "crashy"

    def __init__(self, crash_chip: str):
        super().__init__()
        self.crash_chip = crash_chip

    def prepare_epoch(self, ctx, mix, epoch_years):
        if ctx.chip.chip_id == self.crash_chip:
            raise RuntimeError("injected permanent fault")
        return super().prepare_epoch(ctx, mix, epoch_years)


class HangPolicy(HayatManager):
    """Hangs on ``hang_chip`` until the sentinel file exists."""

    name = "hangy"

    def __init__(self, hang_chip: str, sentinel: str):
        super().__init__()
        self.hang_chip = hang_chip
        self.sentinel = sentinel

    def prepare_epoch(self, ctx, mix, epoch_years):
        if ctx.chip.chip_id == self.hang_chip:
            if not os.path.exists(self.sentinel):
                with open(self.sentinel, "w") as handle:
                    handle.write("armed\n")
                time.sleep(600.0)
        return super().prepare_epoch(ctx, mix, epoch_years)


class SlowPolicy(HayatManager):
    """Sleeps before every epoch decision (skews job durations)."""

    name = "slow"

    def __init__(self, delay_s: float):
        super().__init__()
        self.delay_s = delay_s

    def prepare_epoch(self, ctx, mix, epoch_years):
        time.sleep(self.delay_s)
        return super().prepare_epoch(ctx, mix, epoch_years)


class FastPolicy(HayatManager):
    name = "fast"


@pytest.fixture(scope="module")
def pieces(aging_table):
    return tiny_config(), generate_population(2, seed=23), aging_table


class TestSerialSupervision:
    def test_retry_recovers_flaky_job(self, pieces, tmp_path):
        cfg, population, table = pieces
        sentinel = str(tmp_path / "armed")
        registry = MetricsRegistry()
        with use_registry(registry):
            campaign = run_campaign(
                [FlakyPolicy("chip-01", sentinel)],
                config=cfg, population=population, table=table,
                retries=1,
            )
        assert registry.counter("campaign.retries") == 1
        assert registry.counter("campaign.job_failures") == 0
        assert campaign.failures == []
        assert all(r.epochs for r in campaign.results["flaky"])

    def test_retried_job_matches_clean_run(self, pieces, tmp_path):
        """A retry runs against the same invariants: same result bits."""
        cfg, population, table = pieces
        clean = run_campaign(
            [HayatManager()], config=cfg, population=population, table=table,
        )
        flaky = run_campaign(
            [FlakyPolicy("chip-01", str(tmp_path / "armed"))],
            config=cfg, population=population, table=table, retries=2,
        )
        for a, b in zip(clean.results["hayat"], flaky.results["flaky"]):
            np.testing.assert_array_equal(
                a.health_trajectory(), b.health_trajectory()
            )

    def test_fail_fast_raises_after_exhaustion(self, pieces):
        cfg, population, table = pieces
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(CampaignJobError, match="injected permanent"):
                run_campaign(
                    [AlwaysCrashPolicy("chip-01")],
                    config=cfg, population=population, table=table,
                    retries=1,
                )
        assert registry.counter("campaign.retries") == 1
        assert registry.counter("campaign.job_failures") == 1

    def test_allow_partial_degrades_to_empty_result(self, pieces):
        cfg, population, table = pieces
        registry = MetricsRegistry()
        with use_registry(registry):
            campaign = run_campaign(
                [AlwaysCrashPolicy("chip-00")],
                config=cfg, population=population, table=table,
                retries=1, allow_partial=True,
            )
        assert len(campaign.failures) == 1
        failure = campaign.failures[0]
        assert failure.policy_name == "crashy"
        assert failure.chip_id == "chip-00"
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert "injected permanent fault" in failure.message
        assert registry.counter("campaign.job_failures") == 1
        # Slot alignment survives: the failed chip holds an empty
        # lifetime with the right identity, the other chip completed.
        degraded, completed = campaign.results["crashy"]
        assert degraded.chip_id == "chip-00" and degraded.epochs == []
        assert completed.chip_id == "chip-01" and completed.epochs

    def test_failed_attempt_metrics_are_discarded(self, pieces, tmp_path):
        """A retried job's counters count once, not once per attempt."""
        cfg, population, table = pieces
        clean_registry = MetricsRegistry()
        with use_registry(clean_registry):
            run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=table, retries=1,
            )
        flaky_registry = MetricsRegistry()
        with use_registry(flaky_registry):
            run_campaign(
                [FlakyPolicy("chip-01", str(tmp_path / "armed"))],
                config=cfg, population=population, table=table, retries=1,
            )
        clean = clean_registry.snapshot().counters
        flaky = flaky_registry.snapshot().counters
        for name in ("sim.epochs", "campaign.runs", "campaign.jobs_executed"):
            assert clean[name] == flaky[name], name

    def test_bad_retry_and_timeout_values_rejected(self, pieces):
        cfg, population, table = pieces
        with pytest.raises(ValueError, match="retries"):
            run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=table, retries=-1,
            )
        with pytest.raises(ValueError, match="job_timeout_s"):
            run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=table,
                job_timeout_s=0.0,
            )


class TestPooledSupervision:
    def test_pool_retry_recovers_crashed_worker_job(self, pieces, tmp_path):
        cfg, population, table = pieces
        sentinel = str(tmp_path / "armed")
        registry = MetricsRegistry()
        with use_registry(registry):
            campaign = run_campaign(
                [FlakyPolicy("chip-00", sentinel)],
                config=cfg, population=population, table=table,
                workers=2, retries=1,
            )
        assert registry.counter("campaign.retries") == 1
        assert campaign.failures == []
        assert all(r.epochs for r in campaign.results["flaky"])

    def test_timeout_kills_hung_worker_and_retries(self, pieces, tmp_path):
        """A hung job trips the deadline; the retry runs in a fresh
        worker (the sentinel disarms the hang) and the innocent
        concurrent job completes unscathed."""
        cfg, population, table = pieces
        sentinel = str(tmp_path / "armed")
        registry = MetricsRegistry()
        with use_registry(registry):
            campaign = run_campaign(
                [HangPolicy("chip-00", sentinel)],
                config=cfg, population=population, table=table,
                workers=2, retries=1, job_timeout_s=25.0,
            )
        assert registry.counter("campaign.retries") == 1
        assert registry.counter("campaign.job_failures") == 0
        assert campaign.failures == []
        assert all(r.epochs for r in campaign.results["hangy"])
        # The rescued campaign matches a clean serial run bit-for-bit.
        clean = run_campaign(
            [HayatManager()], config=cfg, population=population, table=table,
        )
        for a, b in zip(clean.results["hayat"], campaign.results["hangy"]):
            np.testing.assert_array_equal(
                a.health_trajectory(), b.health_trajectory()
            )

    def test_progress_reports_in_completion_order(self, pieces):
        """Progress must not stall behind the slowest early job: the
        fast job (submitted second) reports first."""
        cfg, population, table = pieces
        one_chip = generate_population(1, seed=23)
        calls = []
        campaign = run_campaign(
            [SlowPolicy(4.0), FastPolicy()],
            config=cfg, population=one_chip, table=table, workers=2,
            progress=lambda policy, chip: calls.append((policy, chip)),
        )
        assert calls == [("fast", "chip-00"), ("slow", "chip-00")]
        # Completion order must not scramble result association.
        assert campaign.policies() == ["slow", "fast"]
        slow, fast = campaign.results["slow"][0], campaign.results["fast"][0]
        assert slow.policy_name == "slow" and fast.policy_name == "fast"
        np.testing.assert_array_equal(
            slow.health_trajectory(), fast.health_trajectory()
        )
