"""Workload mixes and thread partitioning."""

import numpy as np
import pytest

from repro.workload import make_mix, paper_mix, random_mix
from repro.workload.mix import _partition_threads
from repro.workload.profiles import profile


class TestPartition:
    def test_exact_total(self):
        profiles = [profile("bodytrack"), profile("x264")]
        counts = _partition_threads(profiles, 32)
        assert sum(counts) == 32

    def test_respects_bounds(self):
        profiles = [profile("bodytrack"), profile("canneal")]
        counts = _partition_threads(profiles, 40)
        for count, p in zip(counts, profiles):
            assert p.min_threads <= count <= p.max_threads

    def test_too_few_threads_rejected(self):
        profiles = [profile("ferret")]  # min 4 threads
        with pytest.raises(ValueError, match="at least"):
            _partition_threads(profiles, 2)

    def test_too_many_threads_rejected(self):
        profiles = [profile("canneal")]  # max 24 threads
        with pytest.raises(ValueError, match="saturates"):
            _partition_threads(profiles, 30)


class TestMakeMix:
    def test_total_threads(self):
        mix = make_mix(["bodytrack", "x264"], 32, np.random.default_rng(0))
        assert mix.num_threads == 32
        assert len(mix.threads) == 32

    def test_describe(self):
        mix = make_mix(["bodytrack", "x264"], 10, np.random.default_rng(0))
        text = mix.describe()
        assert "bodytrack#0" in text and "x264#1" in text

    def test_paper_mix_contents(self):
        mix = paper_mix(32, np.random.default_rng(1))
        names = {app.profile.name for app in mix}
        assert names == {"bodytrack", "x264"}

    def test_deterministic(self):
        a = make_mix(["dedup", "ferret"], 16, np.random.default_rng(5))
        b = make_mix(["dedup", "ferret"], 16, np.random.default_rng(5))
        assert [t.fmin_ghz for t in a.threads] == [t.fmin_ghz for t in b.threads]


class TestRandomMix:
    def test_sizes_correctly(self):
        mix = random_mix(32, np.random.default_rng(3))
        assert mix.num_threads == 32

    def test_app_count(self):
        mix = random_mix(24, np.random.default_rng(4), num_applications=4)
        assert len(mix.applications) == 4

    def test_distinct_benchmarks(self):
        mix = random_mix(24, np.random.default_rng(5), num_applications=4)
        names = [app.profile.name for app in mix]
        assert len(set(names)) == 4

    def test_rejects_bad_app_count(self):
        with pytest.raises(ValueError):
            random_mix(24, np.random.default_rng(0), num_applications=0)

    def test_deterministic(self):
        a = random_mix(24, np.random.default_rng(6))
        b = random_mix(24, np.random.default_rng(6))
        assert a.describe() == b.describe()
