"""DVFS frequency ladder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import FrequencyLadder


@pytest.fixture()
def ladder():
    return FrequencyLadder(min_ghz=0.4, max_ghz=4.4, step_ghz=0.1)


class TestConstruction:
    def test_step_count(self, ladder):
        assert len(ladder) == 41
        assert ladder.steps_ghz[0] == pytest.approx(0.4)
        assert ladder.steps_ghz[-1] == pytest.approx(4.4)

    def test_rejects_inverted_span(self):
        with pytest.raises(ValueError):
            FrequencyLadder(min_ghz=2.0, max_ghz=1.0)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            FrequencyLadder(step_ghz=0.0)


class TestQuantization:
    def test_up_rounds_to_next_step(self, ladder):
        assert ladder.quantize_up(2.41) == pytest.approx(2.5)

    def test_up_exact_step_unchanged(self, ladder):
        assert ladder.quantize_up(2.5) == pytest.approx(2.5)

    def test_down_rounds_to_previous_step(self, ladder):
        assert ladder.quantize_down(2.49) == pytest.approx(2.4)

    def test_down_exact_step_unchanged(self, ladder):
        assert ladder.quantize_down(2.5) == pytest.approx(2.5)

    def test_up_clamps_at_top(self, ladder):
        assert ladder.quantize_up(9.0) == pytest.approx(4.4)

    def test_down_clamps_at_bottom(self, ladder):
        assert ladder.quantize_down(0.05) == pytest.approx(0.4)

    def test_broadcasts(self, ladder):
        out = ladder.quantize_up(np.array([1.01, 2.99]))
        np.testing.assert_allclose(out, [1.1, 3.0])

    def test_rejects_negative(self, ladder):
        with pytest.raises(ValueError):
            ladder.quantize_up(-1.0)


class TestFeasibility:
    def test_feasible_with_headroom(self, ladder):
        assert ladder.feasible(required_ghz=2.45, safe_ghz=2.62)

    def test_infeasible_when_steps_dont_fit(self, ladder):
        # requirement rounds up to 2.5, ceiling rounds down to 2.4
        assert not ladder.feasible(required_ghz=2.45, safe_ghz=2.49)

    def test_exact_fit(self, ladder):
        assert ladder.feasible(required_ghz=2.5, safe_ghz=2.5)


@settings(max_examples=50, deadline=None)
@given(freq=st.floats(0.0, 5.0))
def test_property_quantization_brackets(freq):
    ladder = FrequencyLadder()
    up = ladder.quantize_up(freq)
    down = ladder.quantize_down(freq)
    assert down <= up
    if ladder.min_ghz <= freq <= ladder.max_ghz:
        assert down <= freq + 1e-9
        assert freq <= up + 1e-9
        assert up - down <= ladder.step_ghz + 1e-9
