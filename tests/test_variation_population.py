"""Chip population generation and paper-calibration checks."""

import numpy as np
import pytest

from repro.floorplan import Floorplan
from repro.variation import VariationParams, generate_population


class TestGeneration:
    def test_deterministic(self):
        a = generate_population(3, seed=1, floorplan=Floorplan(4, 4))
        b = generate_population(3, seed=1, floorplan=Floorplan(4, 4))
        np.testing.assert_array_equal(a.fmax_matrix_ghz(), b.fmax_matrix_ghz())

    def test_chip_i_stable_under_population_growth(self):
        """Requesting more chips never changes the earlier chips."""
        fp = Floorplan(4, 4)
        small = generate_population(2, seed=5, floorplan=fp)
        large = generate_population(5, seed=5, floorplan=fp)
        np.testing.assert_array_equal(small[1].theta, large[1].theta)

    def test_chips_differ(self):
        pop = generate_population(2, seed=0, floorplan=Floorplan(4, 4))
        assert not np.array_equal(pop[0].theta, pop[1].theta)

    def test_shared_design_pattern(self):
        """All chips of a population share one critical-path pattern."""
        pop = generate_population(3, seed=0, floorplan=Floorplan(4, 4))
        for chip in pop:
            np.testing.assert_array_equal(
                chip.critical_path_pattern, pop[0].critical_path_pattern
            )

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            generate_population(0)

    def test_len_and_iteration(self):
        pop = generate_population(4, seed=2, floorplan=Floorplan(2, 2))
        assert len(pop) == 4
        assert len(list(pop)) == 4
        assert pop[3].chip_id == "chip-03"


class TestPaperCalibration:
    """Section V: ~30-35 % frequency variation at 1.13 V, 3-4 GHz band."""

    @pytest.fixture(scope="class")
    def pop(self):
        return generate_population(25, seed=42)

    def test_frequency_spread_in_paper_band(self, pop):
        spreads = pop.frequency_spreads()
        assert 0.25 < spreads.mean() < 0.40

    def test_frequency_band(self, pop):
        f = pop.fmax_matrix_ghz()
        # Fig. 2(o): per-chip maxima ~3.6 GHz, averages ~3.0 GHz.
        assert 3.3 < f.max(axis=1).mean() < 4.0
        assert 2.7 < f.mean() < 3.3

    def test_vdd_matches_paper(self, pop):
        assert pop.params.vdd == pytest.approx(1.13)
