"""Short-term stress/recovery NBTI (Fig. 1(a) extension)."""

import numpy as np
import pytest

from repro.aging import ShortTermNBTI


@pytest.fixture(scope="module")
def model():
    return ShortTermNBTI(temp_k=358.0, recovery_time_s=50.0)


def square_wave(on, off, cycles):
    return np.tile(
        np.concatenate([np.ones(on, dtype=bool), np.zeros(off, dtype=bool)]), cycles
    )


class TestStressPhase:
    def test_shift_grows_under_stress(self, model):
        trace = model.simulate(np.ones(200, dtype=bool), dt_s=10.0)
        assert (np.diff(trace.total_shift_v) > 0).all()

    def test_no_stress_no_shift(self, model):
        trace = model.simulate(np.zeros(100, dtype=bool), dt_s=10.0)
        np.testing.assert_allclose(trace.total_shift_v, 0.0)

    def test_components_sum(self, model):
        trace = model.simulate(square_wave(50, 50, 3), dt_s=5.0)
        np.testing.assert_allclose(
            trace.total_shift_v,
            trace.permanent_shift_v + trace.recoverable_shift_v,
        )


class TestRecoveryPhase:
    def test_partial_recovery(self, model):
        """Fig. 1(a): the shift relaxes in the recovery phase but never
        returns to zero (the permanent component remains)."""
        trace = model.simulate(square_wave(100, 100, 1), dt_s=5.0)
        peak = trace.total_shift_v[99]
        end = trace.total_shift_v[-1]
        assert end < peak  # recovered something
        assert end > 0.0  # but not everything
        assert end >= trace.permanent_shift_v[-1] - 1e-15

    def test_recoverable_decays_exponentially(self, model):
        trace = model.simulate(square_wave(100, 100, 1), dt_s=5.0)
        r = trace.recoverable_shift_v[100:]
        ratios = r[1:] / r[:-1]
        np.testing.assert_allclose(ratios, np.exp(-5.0 / 50.0), rtol=1e-9)

    def test_sawtooth_ratchets_upward(self, model):
        """Across repeated stress/recovery cycles the local minima climb
        along the long-term envelope."""
        trace = model.simulate(square_wave(50, 50, 6), dt_s=10.0)
        minima = [trace.total_shift_v[100 * k - 1] for k in range(1, 7)]
        assert all(b > a for a, b in zip(minima, minima[1:]))


class TestLongTermConsistency:
    def test_duty_cycle_equivalence(self, model):
        """The paper folds short-term behaviour into Eq. 7's duty cycle;
        the simulated square wave must land within a factor ~2 of the
        closed form (the recoverable ripple accounts for the rest)."""
        simulated, eq7 = model.duty_cycle_equivalence(
            duty=0.5, period_s=1000.0, cycles=50
        )
        assert 0.3 * eq7 < simulated < 3.0 * eq7

    def test_higher_duty_more_shift(self, model):
        low, _ = model.duty_cycle_equivalence(0.2, 1000.0, 20)
        high, _ = model.duty_cycle_equivalence(0.9, 1000.0, 20)
        assert high > low


class TestValidation:
    def test_rejects_empty_pattern(self, model):
        with pytest.raises(ValueError):
            model.simulate(np.array([], dtype=bool), dt_s=1.0)

    def test_rejects_nonpositive_dt(self, model):
        with pytest.raises(ValueError):
            model.simulate(np.ones(5, dtype=bool), dt_s=0.0)

    def test_rejects_bad_recoverable_fraction(self):
        with pytest.raises(ValueError):
            ShortTermNBTI(recoverable_fraction=1.0)
