"""Leakage-temperature coupled fixed point."""

import numpy as np
import pytest

from repro.power import PowerModel
from repro.thermal import ThermalRCNetwork, solve_coupled_steady_state
from repro.thermal.coupled import ThermalRunawayError


@pytest.fixture(scope="module")
def setup(chip, floorplan):
    net = ThermalRCNetwork(floorplan)
    pm = PowerModel.for_chip(chip)
    return net, pm


def _checkerboard(n_rows=8, n_cols=8):
    return np.array(
        [(r + c) % 2 == 0 for r in range(n_rows) for c in range(n_cols)]
    )


class TestCoupledSolve:
    def test_self_consistency(self, setup):
        """The returned temperatures reproduce themselves through one
        more power/thermal evaluation."""
        net, pm = setup
        on = _checkerboard()
        freq = np.full(64, 3.0) * on
        act = np.full(64, 0.6) * on
        temps, breakdown = solve_coupled_steady_state(net, pm, freq, act, on)
        again = net.steady_state(
            pm.evaluate(freq, act, temps, on).total_w
        )
        np.testing.assert_allclose(temps, again, atol=0.05)

    def test_hotter_than_leakage_free(self, setup):
        """Closing the loop adds heat versus a fixed-leakage estimate."""
        net, pm = setup
        on = _checkerboard()
        freq = np.full(64, 3.0) * on
        act = np.full(64, 0.6) * on
        temps, _ = solve_coupled_steady_state(net, pm, freq, act, on)
        first_pass = net.steady_state(
            pm.evaluate(freq, act, np.full(64, net.config.ambient_k), on).total_w
        )
        assert temps.mean() > first_pass.mean()

    def test_all_dark_is_near_ambient(self, setup):
        net, pm = setup
        off = np.zeros(64, dtype=bool)
        temps, breakdown = solve_coupled_steady_state(
            net, pm, np.zeros(64), np.zeros(64), off
        )
        # 64 gated cores leak ~1.2 W total; the rise is under 1 K.
        assert temps.max() - net.config.ambient_k < 1.0
        assert breakdown.chip_total_w == pytest.approx(64 * 0.019, rel=1e-6)

    def test_dense_cluster_hotter_than_spread(self, setup):
        net, pm = setup
        contiguous = np.zeros(64, dtype=bool)
        contiguous[:32] = True
        spread = _checkerboard()
        freq = np.full(64, 3.0)
        act = np.full(64, 0.6)
        t_dense, _ = solve_coupled_steady_state(
            net, pm, freq * contiguous, act * contiguous, contiguous
        )
        t_spread, _ = solve_coupled_steady_state(
            net, pm, freq * spread, act * spread, spread
        )
        assert t_dense.max() > t_spread.max()

    def test_rejects_bad_damping(self, setup):
        net, pm = setup
        on = _checkerboard()
        with pytest.raises(ValueError):
            solve_coupled_steady_state(
                net, pm, np.zeros(64), np.zeros(64), on, damping=0.0
            )

    def test_runaway_reported_not_silent(self, setup):
        """With max_iter too small the solver raises instead of
        returning an unconverged state."""
        net, pm = setup
        on = np.ones(64, dtype=bool)
        freq = np.full(64, 4.0)
        act = np.ones(64)
        with pytest.raises(ThermalRunawayError):
            solve_coupled_steady_state(net, pm, freq, act, on, max_iter=2)
