"""Coverage repair inside the variation-aware DCM."""

import numpy as np
import pytest

from repro.core.dcm import _repair_coverage
from repro.mapping import DarkCoreMap


def dcm_of(on_indices, n=8):
    return DarkCoreMap.from_on_indices(n, on_indices)


class TestRepairCoverage:
    def test_noop_when_covered(self):
        fmax = np.array([3.0, 2.0, 2.5, 2.8, 1.8, 1.9, 2.2, 3.2])
        dcm = dcm_of([0, 2, 3])
        out = _repair_coverage(dcm, fmax, np.array([2.0, 2.2, 2.4]))
        np.testing.assert_array_equal(out.powered_on, dcm.powered_on)

    def test_swaps_in_fast_core_for_stiff_demand(self):
        fmax = np.array([2.0, 2.1, 2.2, 2.3, 3.5, 1.8, 1.9, 2.05])
        dcm = dcm_of([0, 1, 2])  # nothing >= 3.0 selected
        out = _repair_coverage(dcm, fmax, np.array([2.0, 2.0, 3.0]))
        assert out.powered_on[4]  # the 3.5 GHz core joined
        assert out.num_on == 3  # size preserved

    def test_evicts_slowest_selected(self):
        fmax = np.array([2.0, 2.1, 2.2, 2.3, 3.5, 1.8, 1.9, 2.05])
        dcm = dcm_of([0, 1, 2])
        out = _repair_coverage(dcm, fmax, np.array([2.0, 2.0, 3.0]))
        assert not out.powered_on[0]  # slowest selected (2.0) left

    def test_gives_up_when_unrepairable(self):
        """No dark core can close the gap: return the best-effort set
        unchanged (the mapper copes with the shortfall)."""
        fmax = np.full(8, 2.0)
        dcm = dcm_of([0, 1, 2])
        out = _repair_coverage(dcm, fmax, np.array([2.0, 2.0, 3.0]))
        assert out.num_on == 3

    def test_multiple_deficits_fixed(self):
        fmax = np.array([1.5, 1.6, 1.7, 3.1, 3.2, 1.4, 2.9, 1.3])
        dcm = dcm_of([0, 1, 2])
        out = _repair_coverage(dcm, fmax, np.array([2.8, 2.9, 3.0]))
        selected = np.sort(fmax[out.on_indices()])[::-1]
        demands = np.array([3.0, 2.9, 2.8])
        assert (selected >= demands).all()

    def test_quantized_need_picks_stable_core(self):
        """Needs of 2.87 and 2.93 GHz quantize to the same 3.0 tier and
        therefore pick the same repair core — the stability property."""
        fmax = np.array([2.0, 2.1, 2.2, 3.05, 3.4, 1.8, 1.9, 2.05])
        picks = []
        for need in (2.87, 2.93):
            out = _repair_coverage(
                dcm_of([0, 1, 2]), fmax, np.array([2.0, 2.0, need])
            )
            picks.append(tuple(out.on_indices().tolist()))
        assert picks[0] == picks[1]
