"""HayatManager: epoch preparation end to end."""

import numpy as np
import pytest

from repro.core import HayatManager
from repro.sim import ChipContext
from repro.workload import make_mix


@pytest.fixture()
def ctx(chip, aging_table):
    return ChipContext(chip, aging_table, dark_fraction_min=0.5)


class TestPrepareEpoch:
    def test_builds_legal_state(self, ctx):
        mix = make_mix(["bodytrack", "x264"], 32, np.random.default_rng(0))
        state = HayatManager().prepare_epoch(ctx, mix, 0.5)
        state.validate()
        assert state.dcm.num_on == 32
        assert (state.assignment >= 0).sum() == 32

    def test_respects_dark_floor(self, ctx):
        mix = make_mix(["blackscholes", "streamcluster"], 33, np.random.default_rng(0))
        with pytest.raises(ValueError, match="dark-silicon floor"):
            HayatManager().prepare_epoch(ctx, mix, 0.5)

    def test_fences_reserved_fast_cores(self, ctx):
        mix = make_mix(["blackscholes", "streamcluster"], 24, np.random.default_rng(1))
        state = HayatManager().prepare_epoch(ctx, mix, 0.5)
        fenced = np.flatnonzero(state.fenced)
        assert fenced.size > 0
        # Fenced cores are dark and among the chip's fastest.
        assert not state.powered_on[fenced].any()
        fmax = ctx.chip.fmax_init_ghz
        assert fmax[fenced].min() >= np.percentile(fmax, 85)

    def test_threads_run_at_required_frequency(self, ctx):
        mix = make_mix(["bodytrack", "x264"], 24, np.random.default_rng(2))
        state = HayatManager().prepare_epoch(ctx, mix, 0.5)
        for core in np.flatnonzero(state.assignment >= 0):
            thread = state.threads[state.assignment[core]]
            assert state.freq_ghz[core] <= thread.fmin_ghz + 1e-9

    def test_uses_monitored_not_true_health(self, ctx):
        """The manager must see quantized sensor health, a lower bound
        on truth."""
        measured = ctx.measured_health()
        assert (measured <= ctx.health_state.health + 1e-12).all()
