"""Applications and thread specs."""

import numpy as np
import pytest

from repro.workload import Application, profile


class TestSpawn:
    def test_thread_count(self):
        app = Application.spawn(profile("bodytrack"), 8, np.random.default_rng(0))
        assert app.num_threads == 8

    def test_malleability_bounds_enforced(self):
        with pytest.raises(ValueError, match="supports"):
            Application.spawn(profile("bodytrack"), 1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="supports"):
            Application.spawn(profile("bodytrack"), 64, np.random.default_rng(0))

    def test_fmin_jitter_within_band(self):
        p = profile("x264")
        app = Application.spawn(p, 16, np.random.default_rng(1))
        for t in app.threads:
            assert abs(t.fmin_ghz - p.fmin_ghz) <= p.fmin_jitter_ghz + 1e-9

    def test_threads_have_distinct_traces(self):
        app = Application.spawn(profile("x264"), 4, np.random.default_rng(2))
        activities = [t.activity_at(10.0) for t in app.threads]
        assert len(set(activities)) > 1

    def test_deterministic(self):
        a = Application.spawn(profile("x264"), 4, np.random.default_rng(3))
        b = Application.spawn(profile("x264"), 4, np.random.default_rng(3))
        assert [t.fmin_ghz for t in a.threads] == [t.fmin_ghz for t in b.threads]

    def test_instance_naming(self):
        app = Application.spawn(profile("dedup"), 4, np.random.default_rng(0), instance=2)
        assert app.name == "dedup#2"
        assert app.threads[0].thread_id == "dedup#2/0"


class TestThreadSpec:
    def test_ips_scales_with_frequency(self):
        app = Application.spawn(profile("swaptions"), 2, np.random.default_rng(0))
        t = app.threads[0]
        assert t.ips_at(3.0) == pytest.approx(2 * t.ips_at(1.5))

    def test_ips_value(self):
        app = Application.spawn(profile("swaptions"), 2, np.random.default_rng(0))
        t = app.threads[0]
        assert t.ips_at(2.0) == pytest.approx(t.ipc * 2.0e9)

    def test_ips_rejects_negative_frequency(self):
        app = Application.spawn(profile("swaptions"), 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            app.threads[0].ips_at(-1.0)

    def test_duty_cycle_from_profile(self):
        p = profile("canneal")
        app = Application.spawn(p, 4, np.random.default_rng(0))
        assert all(t.duty_cycle == p.duty_cycle for t in app.threads)
