"""Arrhenius MTTF arithmetic."""

import numpy as np
import pytest

from repro.analysis import (
    acceleration_factor,
    mttf_doubling_delta_k,
    relative_mttf,
)


class TestAccelerationFactor:
    def test_unity_at_reference(self):
        assert acceleration_factor(345.0, reference_temp_k=345.0) == pytest.approx(
            1.0
        )

    def test_monotone_in_temperature(self):
        temps = np.linspace(320.0, 400.0, 15)
        factors = acceleration_factor(temps)
        assert (np.diff(factors) > 0).all()

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            acceleration_factor(0.0)


class TestPaperClaim:
    def test_ten_to_fifteen_kelvin_doubles_mttf(self):
        """Section I / [22]: a 10-15 C difference -> 2x MTTF."""
        delta = mttf_doubling_delta_k(360.0)
        assert 10.0 <= delta <= 15.0

    def test_doubling_delta_is_consistent(self):
        delta = mttf_doubling_delta_k(360.0)
        ratio = relative_mttf(
            np.array([360.0 - delta]), np.array([360.0])
        )
        assert ratio == pytest.approx(2.0, rel=1e-6)


class TestRelativeMTTF:
    def test_identical_histories_unity(self):
        temps = np.array([340.0, 360.0, 355.0])
        assert relative_mttf(temps, temps) == pytest.approx(1.0)

    def test_cooler_history_lasts_longer(self):
        cool = np.array([340.0, 345.0, 350.0])
        hot = np.array([365.0, 370.0, 375.0])
        assert relative_mttf(cool, hot) > 1.5

    def test_rejects_empty_history(self):
        with pytest.raises(ValueError):
            relative_mttf(np.array([]), np.array([350.0]))

    def test_transient_spike_hurts(self):
        """A brief excursion raises the mean failure rate even when the
        average temperature barely moves (exponential sensitivity)."""
        steady = np.full(10, 350.0)
        spiky = steady.copy()
        spiky[0] = 395.0
        assert relative_mttf(spiky, steady) < 0.9
