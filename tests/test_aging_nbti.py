"""Eq. 7 NBTI model: shape, monotonicity, inverse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging import NBTIModel


@pytest.fixture(scope="module")
def model():
    return NBTIModel()


class TestDeltaVth:
    def test_zero_age_no_shift(self, model):
        assert model.delta_vth(358.0, 0.0, 0.5) == 0.0

    def test_zero_duty_no_shift(self, model):
        assert model.delta_vth(358.0, 10.0, 0.0) == 0.0

    def test_monotone_in_temperature(self, model):
        temps = np.linspace(300.0, 420.0, 20)
        shifts = model.delta_vth(temps, 10.0, 0.5)
        assert (np.diff(shifts) > 0).all()

    def test_monotone_in_age(self, model):
        years = np.linspace(0.5, 15.0, 20)
        shifts = model.delta_vth(358.0, years, 0.5)
        assert (np.diff(shifts) > 0).all()

    def test_monotone_in_duty(self, model):
        duties = np.linspace(0.05, 1.0, 20)
        shifts = model.delta_vth(358.0, 10.0, duties)
        assert (np.diff(shifts) > 0).all()

    def test_sixth_root_time_envelope(self, model):
        """Doubling the age multiplies the shift by 2^(1/6)."""
        one = model.delta_vth(358.0, 1.0, 0.5)
        two = model.delta_vth(358.0, 2.0, 0.5)
        assert two / one == pytest.approx(2 ** (1 / 6))

    def test_vdd_fourth_power(self):
        low = NBTIModel(vdd=1.0).delta_vth(358.0, 10.0, 0.5)
        high = NBTIModel(vdd=1.2).delta_vth(358.0, 10.0, 0.5)
        assert high / low == pytest.approx(1.2**4)

    def test_ten_to_fifteen_celsius_rule(self, model):
        """Section I: 10-15 C can make a large MTTF difference; our model
        shows a clearly super-linear stress increase across that band."""
        base = model.delta_vth(358.0, 10.0, 0.5)
        hotter = model.delta_vth(358.0 + 12.5, 10.0, 0.5)
        assert hotter / base > 1.1

    def test_rejects_negative_age(self, model):
        with pytest.raises(ValueError):
            model.delta_vth(358.0, -1.0, 0.5)

    def test_rejects_duty_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.delta_vth(358.0, 1.0, 1.5)

    def test_rejects_nonpositive_temperature(self, model):
        with pytest.raises(ValueError):
            model.delta_vth(0.0, 1.0, 0.5)


class TestEquivalentAge:
    def test_exact_roundtrip(self, model):
        shift = model.delta_vth(365.0, 7.3, 0.62)
        age = model.equivalent_age_years(shift, 365.0, 0.62)
        assert age == pytest.approx(7.3, rel=1e-9)

    def test_zero_shift_zero_age(self, model):
        assert model.equivalent_age_years(0.0, 358.0, 0.5) == 0.0

    def test_zero_duty_positive_shift_is_infinite(self, model):
        assert np.isinf(model.equivalent_age_years(0.01, 358.0, 0.0))

    def test_cooler_reference_gives_older_equivalent(self, model):
        """The same shift takes longer to accumulate at a cooler
        temperature, so the equivalent age is larger."""
        shift = model.delta_vth(370.0, 5.0, 0.8)
        cool_age = model.equivalent_age_years(shift, 340.0, 0.8)
        assert cool_age > 5.0

    def test_rejects_negative_shift(self, model):
        with pytest.raises(ValueError):
            model.equivalent_age_years(-0.1, 358.0, 0.5)


@settings(max_examples=50, deadline=None)
@given(
    temp=st.floats(290.0, 430.0),
    years=st.floats(0.01, 20.0),
    duty=st.floats(0.01, 1.0),
)
def test_property_roundtrip_inverse(temp, years, duty):
    model = NBTIModel()
    shift = model.delta_vth(temp, years, duty)
    recovered = model.equivalent_age_years(shift, temp, duty)
    assert recovered == pytest.approx(years, rel=1e-6)
