"""3D aging tables: interpolation, inverse lookup, table walks."""

import numpy as np
import pytest

from repro.aging import AgingTable, CoreAgingEstimator
from repro.aging.tables import build_aging_table


class TestForwardLookup:
    def test_matches_estimator_at_grid_points(self, aging_table):
        est = CoreAgingEstimator()
        t = aging_table.temp_grid_k[3]
        d = aging_table.duty_grid[2]
        y = aging_table.age_grid_years[5]
        assert aging_table.health(t, d, y) == pytest.approx(
            est.relative_fmax(t, d, y), rel=1e-12
        )

    def test_interpolation_error_small(self, aging_table):
        """Off-grid lookups stay close to the exact estimator."""
        est = CoreAgingEstimator()
        rng = np.random.default_rng(0)
        for _ in range(20):
            t = rng.uniform(300.0, 420.0)
            d = rng.uniform(0.1, 1.0)
            y = rng.uniform(0.5, 12.0)
            exact = est.relative_fmax(t, d, y)
            approx = float(aging_table.health(t, d, y))
            assert abs(approx - exact) < 0.01

    def test_monotone_along_age(self, aging_table):
        years = np.linspace(0.0, 20.0, 30)
        h = aging_table.health(np.full(30, 370.0), np.full(30, 0.7), years)
        assert (np.diff(h) <= 1e-12).all()

    def test_clamps_outside_grid(self, aging_table):
        inside = aging_table.health(430.0, 1.0, 120.0)
        outside = aging_table.health(500.0, 1.0, 500.0)
        assert outside == pytest.approx(inside)

    def test_broadcasts(self, aging_table):
        out = aging_table.health(np.full(5, 350.0), 0.5, np.linspace(1, 5, 5))
        assert out.shape == (5,)


class TestEquivalentAge:
    def test_roundtrip_on_age_grid(self, aging_table):
        y = aging_table.age_grid_years[7]
        h = aging_table.health(350.0, 0.6, y)
        recovered = aging_table.equivalent_age(350.0, 0.6, h)
        assert recovered[0] == pytest.approx(y, rel=1e-6)

    def test_full_health_is_age_zero(self, aging_table):
        assert aging_table.equivalent_age(350.0, 0.6, 1.0)[0] == 0.0

    def test_very_low_health_clamps_to_edge(self, aging_table):
        age = aging_table.equivalent_age(350.0, 0.6, 0.01)
        assert age[0] == aging_table.max_age_years

    def test_zero_duty_any_health_maps_to_edge_or_zero(self, aging_table):
        """A zero-duty curve is flat at 1.0: degraded health has no
        finite equivalent age; the lookup must not crash or return NaN."""
        age = aging_table.equivalent_age(350.0, 0.0, 0.9)
        assert np.isfinite(age).all()

    def test_hotter_reference_gives_younger_equivalent(self, aging_table):
        h = aging_table.health(340.0, 0.6, 8.0)
        age_hot = aging_table.equivalent_age(400.0, 0.6, h)
        age_cool = aging_table.equivalent_age(340.0, 0.6, h)
        assert age_hot[0] < age_cool[0]

    def test_batch_vectorization(self, aging_table):
        temps = np.array([340.0, 360.0, 380.0])
        duties = np.array([0.4, 0.6, 0.8])
        healths = np.array([0.95, 0.9, 0.85])
        ages = aging_table.equivalent_age(temps, duties, healths)
        assert ages.shape == (3,)
        for i in range(3):
            single = aging_table.equivalent_age(
                temps[i], duties[i], healths[i]
            )
            assert ages[i] == pytest.approx(single[0])


class TestNextHealth:
    def test_never_increases_health(self, aging_table):
        rng = np.random.default_rng(1)
        temps = rng.uniform(310.0, 410.0, 50)
        duties = rng.uniform(0.0, 1.0, 50)
        current = rng.uniform(0.8, 1.0, 50)
        nxt = aging_table.next_health(temps, duties, current, 0.5)
        assert (nxt <= current + 1e-12).all()

    def test_zero_epoch_preserves_health(self, aging_table):
        current = np.array([0.93, 0.97])
        nxt = aging_table.next_health(
            np.array([350.0, 370.0]), np.array([0.5, 0.5]), current, 0.0
        )
        np.testing.assert_allclose(nxt, current, atol=1e-9)

    def test_matches_continuous_aging_when_conditions_constant(self, aging_table):
        """Walking the table in two half-epochs equals one full epoch
        when (T, d) stay the same — the equivalent-age composition law."""
        h0 = np.array([1.0])
        direct = aging_table.next_health(360.0, 0.7, h0, 2.0)
        stepped = aging_table.next_health(
            360.0, 0.7, aging_table.next_health(360.0, 0.7, h0, 1.0), 1.0
        )
        np.testing.assert_allclose(stepped, direct, atol=1e-3)

    def test_zero_duty_epoch_is_free(self, aging_table):
        """Cores that stay dark all epoch do not age."""
        current = np.array([0.9])
        nxt = aging_table.next_health(400.0, 0.0, current, 1.0)
        assert nxt[0] == pytest.approx(0.9, abs=1e-9)

    def test_rejects_negative_epoch(self, aging_table):
        with pytest.raises(ValueError):
            aging_table.next_health(350.0, 0.5, np.array([0.9]), -1.0)


class TestPersistence:
    def test_save_load_roundtrip(self, aging_table, tmp_path):
        path = str(tmp_path / "table.npz")
        aging_table.save(path)
        loaded = AgingTable.load(path)
        np.testing.assert_array_equal(loaded.values, aging_table.values)
        np.testing.assert_array_equal(loaded.temp_grid_k, aging_table.temp_grid_k)


class TestValidation:
    def test_rejects_wrong_value_shape(self, aging_table):
        with pytest.raises(ValueError):
            AgingTable(
                aging_table.temp_grid_k,
                aging_table.duty_grid,
                aging_table.age_grid_years,
                aging_table.values[:-1],
            )

    def test_rejects_nonmonotone_grid(self, aging_table):
        bad = aging_table.temp_grid_k.copy()
        bad[1] = bad[0]
        with pytest.raises(ValueError):
            AgingTable(
                bad,
                aging_table.duty_grid,
                aging_table.age_grid_years,
                aging_table.values,
            )

    def test_rejects_health_above_one(self, aging_table):
        bad = aging_table.values.copy()
        bad[0, 0, 0] = 1.5
        with pytest.raises(ValueError):
            AgingTable(
                aging_table.temp_grid_k,
                aging_table.duty_grid,
                aging_table.age_grid_years,
                bad,
            )


class TestBracketedInverse:
    """The count-bracket fast path of ``_ages_located`` must reproduce
    the exhaustive full-curve inversion bit for bit."""

    def _reference_ages(self, table, temp, duty, health):
        """Exhaustive path: blend full age curves, invert them."""
        curves = table._health_curves(temp, duty)
        return table._ages_on_curves(curves, np.atleast_1d(health))

    def test_random_batches_match_full_curves(self, aging_table):
        assert aging_table._age_monotone
        rng = np.random.default_rng(1234)
        tg = aging_table.temp_grid_k
        stored = aging_table.values.ravel()
        for _ in range(40):
            b = int(rng.integers(1, 50))
            temp = rng.uniform(tg[0] - 15.0, tg[-1] + 15.0, b)
            duty = rng.uniform(0.0, 1.0, b)
            health = rng.uniform(0.2, 1.0, b)
            # Adversarial sprinkles: grid-edge duties, pristine health,
            # and targets equal to exactly-stored curve values (the
            # cases that force the two-threshold bracket to widen).
            duty[rng.random(b) < 0.15] = 0.0
            duty[rng.random(b) < 0.15] = 1.0
            health[rng.random(b) < 0.15] = 1.0
            exact = rng.random(b) < 0.3
            if exact.any():
                health[exact] = stored[
                    rng.integers(0, stored.size, int(exact.sum()))
                ]
            fast = aging_table.equivalent_age(temp, duty, health)
            ref = self._reference_ages(aging_table, temp, duty, health)
            np.testing.assert_array_equal(fast, ref)

    def test_single_element_batch(self, aging_table):
        """B=1 exercises the degenerate-reduction guard."""
        fast = aging_table.equivalent_age(355.0, 0.45, 0.97)
        ref = self._reference_ages(
            aging_table, np.array([355.0]), np.array([0.45]), 0.97
        )
        np.testing.assert_array_equal(fast, ref)

    def test_next_health_consistent_with_components(self, aging_table):
        """The fused table walk equals invert + advance + forward read."""
        rng = np.random.default_rng(7)
        b = 12
        temp = rng.uniform(300.0, 430.0, b)
        duty = rng.uniform(0.05, 1.0, b)
        health = rng.uniform(0.5, 1.0, b)
        walked = aging_table.next_health(temp, duty, health, 0.5)
        ages = aging_table.equivalent_age(temp, duty, health) + 0.5
        read = aging_table.health(temp, duty, ages)
        np.testing.assert_array_equal(walked, np.minimum(read, health))


class TestVectorizedBuild:
    """``build_aging_table``'s broadcast grid evaluation must be
    bit-identical to the scalar triple loop it replaced, and subclasses
    that override the scalar evaluation must still get the loop."""

    GRIDS = dict(
        temp_grid_k=np.array([300.0, 340.0, 371.5, 420.0]),
        duty_grid=np.array([0.0, 0.05, 0.3, 1.0]),
        age_grid_years=np.array([0.0, 0.1, 1.7, 8.0, 30.0]),
    )

    def _loop_reference(self, estimator, temps, duties, years):
        values = np.empty((len(temps), len(duties), len(years)))
        for i, temp in enumerate(temps):
            for j, duty in enumerate(duties):
                for k, age in enumerate(years):
                    values[i, j, k] = estimator.relative_fmax(temp, duty, age)
        return values

    def test_bit_identical_to_scalar_loop(self):
        est = CoreAgingEstimator()
        table = build_aging_table(est, **self.GRIDS)
        ref = self._loop_reference(
            est,
            self.GRIDS["temp_grid_k"],
            self.GRIDS["duty_grid"],
            self.GRIDS["age_grid_years"],
        )
        np.testing.assert_array_equal(table.values, ref)
        # Year zero is pristine by definition on both paths.
        np.testing.assert_array_equal(table.values[:, :, 0], 1.0)

    def test_default_estimator_and_grids(self):
        """The no-argument build (what ``default_aging_table`` runs)
        takes the broadcast path and still matches the loop."""
        table = build_aging_table()
        est = CoreAgingEstimator()
        # Spot-check a scattering of grid points against the scalar
        # estimator — full-grid loop comparison lives in the small-grid
        # test above; here 60 points pin the default-grid wiring.
        rng = np.random.default_rng(5)
        for _ in range(60):
            i = rng.integers(0, table.temp_grid_k.size)
            j = rng.integers(0, table.duty_grid.size)
            k = rng.integers(0, table.age_grid_years.size)
            assert table.values[i, j, k] == est.relative_fmax(
                float(table.temp_grid_k[i]),
                float(table.duty_grid[j]),
                float(table.age_grid_years[k]),
            )

    def test_subclass_override_falls_back_to_loop(self):
        calls = []

        class Faulty(CoreAgingEstimator):
            def relative_fmax(self, temp_k, core_duty, years):
                calls.append((temp_k, core_duty, years))
                if years == 0.0:
                    return 1.0
                return max(
                    super().relative_fmax(temp_k, core_duty, years) - 0.01,
                    1e-3,
                )

        est = Faulty()
        table = build_aging_table(est, **self.GRIDS)
        n_points = 4 * 4 * 5
        assert len(calls) == n_points  # every grid point hit the override
        ref = self._loop_reference(
            est,
            self.GRIDS["temp_grid_k"],
            self.GRIDS["duty_grid"],
            self.GRIDS["age_grid_years"],
        )
        np.testing.assert_array_equal(table.values, ref)
