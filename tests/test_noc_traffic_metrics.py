"""Traffic matrices and mapping-level NoC metrics."""

import numpy as np
import pytest

from repro.floorplan import Floorplan
from repro.mapping import ChipState, DarkCoreMap
from repro.noc import MeshTopology, evaluate_mapping, traffic_matrix
from repro.workload import make_mix


def build_state(cores_for_threads, mix_names=("dedup", "ferret"), n=16):
    threads = make_mix(list(mix_names), len(cores_for_threads), np.random.default_rng(0)).threads
    dcm = DarkCoreMap.from_on_indices(n, cores_for_threads)
    state = ChipState(n, threads, dcm)
    for i, core in enumerate(cores_for_threads):
        state.place(i, core, 2.5)
    return state


class TestTrafficMatrix:
    def test_same_app_threads_communicate(self):
        state = build_state([0, 1, 2, 3, 4, 5, 6])
        traffic = traffic_matrix(state)
        # dedup has min 3 threads; its threads talk pairwise.
        app0_cores = [
            c for c in range(7)
            if state.threads[state.assignment[c]].app_name.startswith("dedup")
        ]
        a, b = app0_cores[0], app0_cores[1]
        assert traffic[a, b] > 0

    def test_cross_app_silence(self):
        state = build_state([0, 1, 2, 3, 4, 5, 6])
        traffic = traffic_matrix(state)
        dedup = [
            c for c in range(7)
            if state.threads[state.assignment[c]].app_name.startswith("dedup")
        ]
        ferret = [
            c for c in range(7)
            if state.threads[state.assignment[c]].app_name.startswith("ferret")
        ]
        assert traffic[dedup[0], ferret[0]] == 0.0

    def test_scales_with_frequency(self):
        slow = build_state([0, 1, 2, 3, 4, 5, 6])
        fast = build_state([0, 1, 2, 3, 4, 5, 6])
        for core in range(7):
            fast.set_frequency(core, 3.0)
        assert traffic_matrix(fast).sum() > traffic_matrix(slow).sum()

    def test_empty_mapping_no_traffic(self):
        threads = make_mix(["dedup"], 3, np.random.default_rng(0)).threads
        state = ChipState(16, threads, DarkCoreMap.from_on_indices(16, [0, 1, 2]))
        assert traffic_matrix(state).sum() == 0.0

    def test_rejects_nonpositive_nominal(self):
        state = build_state([0, 1, 2, 3, 4, 5, 6])
        with pytest.raises(ValueError):
            traffic_matrix(state, nominal_ghz=0.0)


class TestEvaluateMapping:
    def test_packed_cheaper_than_spread(self):
        """The Fattah objective: contiguity reduces weighted hops."""
        mesh = MeshTopology(Floorplan(4, 4))
        packed = build_state([0, 1, 2, 4, 5, 6, 8])
        spread = build_state([0, 3, 12, 15, 5, 10, 6])
        report_packed = evaluate_mapping(packed, mesh)
        report_spread = evaluate_mapping(spread, mesh)
        assert report_packed.weighted_hops < report_spread.weighted_hops
        assert report_packed.mean_hops < report_spread.mean_hops

    def test_total_traffic_mapping_invariant(self):
        """Injected traffic depends on the mix, not on placement."""
        mesh = MeshTopology(Floorplan(4, 4))
        a = build_state([0, 1, 2, 4, 5, 6, 8])
        b = build_state([0, 3, 12, 15, 5, 10, 6])
        ra = evaluate_mapping(a, mesh)
        rb = evaluate_mapping(b, mesh)
        assert ra.total_traffic == pytest.approx(rb.total_traffic)

    def test_power_proportional_to_weighted_hops(self):
        mesh = MeshTopology(Floorplan(4, 4))
        state = build_state([0, 1, 2, 4, 5, 6, 8])
        report = evaluate_mapping(state, mesh)
        assert report.noc_power_w == pytest.approx(
            report.weighted_hops * 8.0e-3
        )

    def test_congestion_positive_when_traffic_flows(self):
        mesh = MeshTopology(Floorplan(4, 4))
        state = build_state([0, 1, 2, 4, 5, 6, 8])
        assert evaluate_mapping(state, mesh).max_link_load > 0
