"""Baseline policies: VAA, coolest-first, random."""

import numpy as np
import pytest

from repro.baselines import CoolestFirstManager, RandomManager, VAAManager
from repro.sim import ChipContext
from repro.workload import make_mix


@pytest.fixture()
def ctx(chip, aging_table):
    return ChipContext(chip, aging_table, dark_fraction_min=0.5)


def mix32(seed=0):
    return make_mix(["bodytrack", "x264"], 32, np.random.default_rng(seed))


class TestVAA:
    def test_builds_legal_state(self, ctx):
        state = VAAManager().prepare_epoch(ctx, mix32(), 0.5)
        state.validate()
        assert state.dcm.num_on == 32
        assert (state.assignment >= 0).sum() == 32

    def test_contiguity(self, ctx, floorplan):
        """VAA's regions are much more compact than a random scatter:
        mean pairwise hop distance close to the dense optimum."""
        state = VAAManager().prepare_epoch(ctx, mix32(), 0.5)
        on = state.dcm.on_indices()
        hops = np.array(
            [[floorplan.manhattan_distance(a, b) for b in on] for a in on]
        )
        mean_hops = hops.sum() / (len(on) * (len(on) - 1))
        # Two packed 16-core regions average ~4.4 hops overall; a random
        # spread averages ~5.3 and the temperature-optimized DCM higher.
        assert mean_hops < 4.8

    def test_frequency_feasibility(self, ctx):
        state = VAAManager().prepare_epoch(ctx, mix32(), 0.5)
        fmax = ctx.chip.fmax_init_ghz
        for core in np.flatnonzero(state.assignment >= 0):
            thread = state.threads[state.assignment[core]]
            # Either feasible or the explicit max-throughput fallback
            # running at the core's own safe frequency.
            assert (
                fmax[core] >= thread.fmin_ghz
                or state.freq_ghz[core] == pytest.approx(fmax[core])
            )

    def test_no_fencing(self, ctx):
        state = VAAManager().prepare_epoch(ctx, mix32(), 0.5)
        assert not state.fenced.any()

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            VAAManager(neighborhood_radius=0)

    def test_respects_dark_floor(self, ctx):
        big = make_mix(["blackscholes", "streamcluster"], 33, np.random.default_rng(0))
        with pytest.raises(ValueError, match="dark-silicon floor"):
            VAAManager().prepare_epoch(ctx, big, 0.5)


class TestCoolestFirst:
    def test_builds_legal_state(self, ctx):
        state = CoolestFirstManager().prepare_epoch(ctx, mix32(), 0.5)
        state.validate()
        assert (state.assignment >= 0).sum() == 32

    def test_spreads_like_temperature_dcm(self, ctx, floorplan):
        state = CoolestFirstManager().prepare_epoch(ctx, mix32(), 0.5)
        on = state.dcm.on_indices()
        hops = np.array(
            [[floorplan.manhattan_distance(a, b) for b in on] for a in on]
        )
        mean_hops = hops.sum() / (len(on) * (len(on) - 1))
        assert mean_hops > 4.5


class TestRandom:
    def test_builds_legal_state(self, ctx):
        state = RandomManager().prepare_epoch(ctx, mix32(), 0.5)
        state.validate()

    def test_deterministic_given_seed_and_age(self, chip, aging_table):
        a = RandomManager(seed=7).prepare_epoch(
            ChipContext(chip, aging_table, 0.5), mix32(3), 0.5
        )
        b = RandomManager(seed=7).prepare_epoch(
            ChipContext(chip, aging_table, 0.5), mix32(3), 0.5
        )
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_different_seeds_differ(self, chip, aging_table):
        a = RandomManager(seed=1).prepare_epoch(
            ChipContext(chip, aging_table, 0.5), mix32(3), 0.5
        )
        b = RandomManager(seed=2).prepare_epoch(
            ChipContext(chip, aging_table, 0.5), mix32(3), 0.5
        )
        assert not np.array_equal(a.assignment, b.assignment)
