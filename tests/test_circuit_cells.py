"""Standard-cell library: probabilities and stress duties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Cell, CellLibrary, default_library


@pytest.fixture(scope="module")
def lib():
    return default_library()


class TestOutputProbabilities:
    def test_inverter(self, lib):
        assert lib["INV_X1"].output_probability(np.array([0.3])) == pytest.approx(0.7)

    def test_nand_all_ones(self, lib):
        assert lib["NAND2_X1"].output_probability(np.array([1.0, 1.0])) == 0.0

    def test_nor_all_zeros(self, lib):
        assert lib["NOR2_X1"].output_probability(np.array([0.0, 0.0])) == 1.0

    def test_xor_half_inputs(self, lib):
        assert lib["XOR2_X1"].output_probability(np.array([0.5, 0.5])) == pytest.approx(
            0.5
        )

    def test_and_independence(self, lib):
        assert lib["AND2_X1"].output_probability(
            np.array([0.5, 0.4])
        ) == pytest.approx(0.2)

    def test_or_complement_of_nor(self, lib):
        p = np.array([0.3, 0.6])
        assert lib["OR2_X1"].output_probability(p) == pytest.approx(
            1.0 - lib["NOR2_X1"].output_probability(p)
        )


class TestStressDuty:
    def test_all_high_inputs_no_stress(self, lib):
        assert lib["NAND2_X1"].stress_duty(np.array([1.0, 1.0])) == 0.0

    def test_all_low_inputs_full_stress(self, lib):
        assert lib["NAND2_X1"].stress_duty(np.array([0.0, 0.0])) == 1.0

    def test_averages_over_inputs(self, lib):
        assert lib["NAND2_X1"].stress_duty(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_wrong_arity_rejected(self, lib):
        with pytest.raises(ValueError):
            lib["NAND2_X1"].stress_duty(np.array([0.5]))


class TestLibrary:
    def test_lookup_by_name(self, lib):
        assert lib["INV_X1"].num_inputs == 1

    def test_unknown_name(self, lib):
        with pytest.raises(KeyError, match="NO_SUCH"):
            lib["NO_SUCH_CELL"]

    def test_contains(self, lib):
        assert "DFF_X1" in lib
        assert "FOO" not in lib

    def test_combinational_excludes_flops(self, lib):
        names = [c.name for c in lib.combinational()]
        assert "DFF_X1" not in names
        assert "INV_X1" in names

    def test_duplicate_names_rejected(self):
        cell = default_library()["INV_X1"]
        with pytest.raises(ValueError):
            CellLibrary([cell, cell])

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            CellLibrary([])

    def test_cell_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError):
            Cell("BAD", 1, 0.0, lambda p: p[0])


@settings(max_examples=30, deadline=None)
@given(p=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=2))
def test_property_probabilities_stay_in_range(p):
    lib = default_library()
    arr = np.array(p)
    for name in ("NAND2_X1", "NOR2_X1", "XOR2_X1", "AND2_X1", "OR2_X1"):
        out = lib[name].output_probability(arr)
        assert 0.0 <= out <= 1.0
