"""Combined power model (Eq. 2)."""

import numpy as np
import pytest

from repro.power import DynamicPowerModel, LeakageModel, PowerModel


@pytest.fixture()
def model():
    return PowerModel(
        DynamicPowerModel(), LeakageModel(), leakage_scale=np.array([1.0, 2.0, 0.5])
    )


class TestEvaluate:
    def test_breakdown_shapes(self, model):
        out = model.evaluate(
            freq_ghz=np.array([3.0, 2.0, 0.0]),
            activity=np.array([1.0, 0.5, 0.0]),
            temp_k=np.full(3, 330.0),
            powered_on=np.array([True, True, False]),
        )
        assert out.dynamic_w.shape == (3,)
        assert out.leakage_w.shape == (3,)
        assert out.chip_total_w == pytest.approx(out.total_w.sum())

    def test_dark_core_has_no_dynamic_power(self, model):
        out = model.evaluate(
            freq_ghz=np.array([3.0, 3.0, 3.0]),
            activity=np.ones(3),
            temp_k=np.full(3, 330.0),
            powered_on=np.array([True, True, False]),
        )
        assert out.dynamic_w[2] == 0.0
        assert out.leakage_w[2] == pytest.approx(0.019)

    def test_leakage_scale_applied_per_core(self, model):
        out = model.evaluate(
            freq_ghz=np.zeros(3),
            activity=np.zeros(3),
            temp_k=np.full(3, 330.0),
            powered_on=np.ones(3, dtype=bool),
        )
        np.testing.assert_allclose(out.leakage_w, 1.18 * np.array([1.0, 2.0, 0.5]))

    def test_shape_mismatch_rejected(self, model):
        with pytest.raises(ValueError, match="freq_ghz"):
            model.evaluate(
                np.zeros(2), np.zeros(3), np.full(3, 330.0), np.ones(3, dtype=bool)
            )

    def test_for_chip_shares_parameters(self, chip):
        model = PowerModel.for_chip(chip)
        assert model.dynamic.vdd == chip.params.vdd
        assert model.num_cores == chip.num_cores
        np.testing.assert_array_equal(model.leakage_scale, chip.leakage_scale)

    def test_rejects_bad_leakage_scale(self):
        with pytest.raises(ValueError):
            PowerModel(DynamicPowerModel(), LeakageModel(), np.array([1.0, -1.0]))
