"""Guardband analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    chip_level_guardband_ghz,
    core_level_advantage_fraction,
    guardband_loss_fraction,
)


@pytest.fixture()
def trajectory():
    # 3 cores: start at 3.4/3.0/2.6, degrade linearly over 5 epochs.
    init = np.array([3.4, 3.0, 2.6])
    losses = np.linspace(0.0, 0.4, 5)
    traj = init[None, :] - losses[:, None]
    return init, traj


class TestChipLevelGuardband:
    def test_locks_to_worst_core_end_of_life(self, trajectory):
        init, traj = trajectory
        assert chip_level_guardband_ghz(init, traj) == pytest.approx(2.2)

    def test_loss_fraction(self, trajectory):
        init, traj = trajectory
        loss = guardband_loss_fraction(init, traj)
        assert loss == pytest.approx((3.0 - 2.2) / 3.0)

    def test_paper_magnitude_on_simulated_chip(self, chip, aging_table):
        """On a real simulated lifetime the chip-level guardband costs
        >= 20 % of the initial average frequency — the Section I claim."""
        from repro.core import HayatManager
        from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig

        cfg = SimulationConfig(
            lifetime_years=10.0, dark_fraction_min=0.5, window_s=5.0, seed=3
        )
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        result = LifetimeSimulator(cfg).run(ctx, HayatManager())
        loss = guardband_loss_fraction(
            result.fmax_init_ghz, result.fmax_trajectory_ghz()
        )
        assert loss > 0.20

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            chip_level_guardband_ghz(np.ones(3), np.ones(3))

    def test_rejects_nonpositive_frequencies(self):
        with pytest.raises(ValueError):
            chip_level_guardband_ghz(np.ones(2), np.array([[1.0, -1.0]]))


class TestCoreLevelAdvantage:
    def test_positive_whenever_variation_exists(self, trajectory):
        init, traj = trajectory
        assert core_level_advantage_fraction(init, traj) > 0.0

    def test_zero_for_uniform_static_chip(self):
        init = np.full(4, 3.0)
        traj = np.full((3, 4), 3.0)
        assert core_level_advantage_fraction(init, traj) == pytest.approx(0.0)

    def test_value(self, trajectory):
        init, traj = trajectory
        expected = traj.mean() / 2.2 - 1.0
        assert core_level_advantage_fraction(init, traj) == pytest.approx(expected)
