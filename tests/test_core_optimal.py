"""Exhaustive reference solver, and Algorithm 1's quality against it."""

import numpy as np
import pytest

from repro.core import HayatMapper, OnlineHealthEstimator
from repro.core.dcm import temperature_optimized_dcm
from repro.core.optimal import (
    MAX_ASSIGNMENTS,
    objective_of_state,
    optimal_mapping,
)
from repro.floorplan import Floorplan
from repro.mapping import ChipState
from repro.power import PowerModel
from repro.thermal import ThermalPredictor, ThermalRCNetwork
from repro.variation import Chip, VariationParams
from repro.workload import make_mix


@pytest.fixture(scope="module")
def small_setup(aging_table):
    floorplan = Floorplan(3, 3)
    params = VariationParams(grid_per_core=2, critical_path_points=3)
    chip = Chip.sample(floorplan, params, np.random.default_rng(5))
    net = ThermalRCNetwork(floorplan)
    pm = PowerModel.for_chip(chip)
    estimator = OnlineHealthEstimator(ThermalPredictor.learn(net, pm), aging_table)
    return floorplan, chip, estimator, net


def small_threads(count, seed=0):
    return make_mix(["blackscholes", "canneal"], count, np.random.default_rng(seed)).threads


class TestOptimalSolver:
    def test_finds_feasible_solution(self, small_setup):
        floorplan, chip, estimator, _ = small_setup
        threads = small_threads(4)
        solution = optimal_mapping(
            threads, chip.fmax_init_ghz, np.ones(9), estimator, 0.5
        )
        assert len(solution.assignment) == 4
        cores = list(solution.assignment.values())
        assert len(set(cores)) == 4  # one thread per core
        for thread_index, core in solution.assignment.items():
            assert chip.fmax_init_ghz[core] >= threads[thread_index].fmin_ghz

    def test_objective_matches_reevaluation(self, small_setup):
        """The reported objective equals scoring the returned assignment
        through the same estimator."""
        floorplan, chip, estimator, _ = small_setup
        threads = small_threads(3, seed=2)
        solution = optimal_mapping(
            threads, chip.fmax_init_ghz, np.ones(9), estimator, 0.5
        )
        from repro.mapping import DarkCoreMap

        cores = sorted(solution.assignment.values())
        state = ChipState(9, threads, DarkCoreMap.from_on_indices(9, cores))
        for thread_index, core in solution.assignment.items():
            state.place(thread_index, core, threads[thread_index].fmin_ghz)
        assert objective_of_state(
            state, np.ones(9), estimator, 0.5
        ) == pytest.approx(solution.objective, rel=1e-9)

    def test_rejects_oversized_instances(self, small_setup):
        _, chip, estimator, _ = small_setup
        threads = small_threads(4)
        huge = np.ones(64)
        with pytest.raises(ValueError, match="search space"):
            optimal_mapping(threads * 4, huge, np.ones(64), estimator, 0.5)

    def test_rejects_infeasible_requirements(self, small_setup):
        _, chip, estimator, _ = small_setup
        threads = small_threads(3)
        slow = np.full(9, 0.2)
        with pytest.raises(ValueError, match="no .* assignment"):
            optimal_mapping(threads, slow, np.ones(9), estimator, 0.5)

    def test_more_threads_than_cores_rejected(self, small_setup):
        _, chip, estimator, _ = small_setup
        with pytest.raises(ValueError, match="more threads"):
            optimal_mapping(
                small_threads(4) * 3, chip.fmax_init_ghz, np.ones(9), estimator, 0.5
            )


class TestHeuristicQuality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_algorithm1_close_to_optimal(self, small_setup, seed):
        """Algorithm 1's greedy must reach >= 99 % of the exhaustive
        optimum of the Eq. 6 objective on small instances — the paper's
        justification for replacing the ILP with a run-time heuristic."""
        floorplan, chip, estimator, net = small_setup
        threads = small_threads(4, seed=seed)
        health = np.ones(9)

        optimal = optimal_mapping(
            threads, chip.fmax_init_ghz, health, estimator, 0.5
        )

        dcm = temperature_optimized_dcm(floorplan, 4, net.influence_matrix())
        state = ChipState(9, threads, dcm)
        mapper = HayatMapper(estimator)
        unmapped = mapper.map_threads(
            state, chip.fmax_init_ghz, health, 0.5, 0.0
        )
        assert unmapped == []
        heuristic_objective = objective_of_state(state, health, estimator, 0.5)
        assert heuristic_objective >= 0.99 * optimal.objective
