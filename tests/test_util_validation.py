"""Argument validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    check_fraction,
    check_index,
    check_nonnegative,
    check_positive,
    check_probability_array,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)


class TestCheckFraction:
    def test_inclusive_bounds(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("f", 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.2)


class TestCheckShape:
    def test_accepts_matching(self):
        out = check_shape("a", np.zeros((2, 3)), (2, 3))
        assert out.shape == (2, 3)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_shape("a", np.zeros(4), (2, 2))


class TestCheckProbabilityArray:
    def test_accepts_valid(self):
        arr = check_probability_array("p", np.array([0.0, 0.5, 1.0]))
        assert arr.shape == (3,)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability_array("p", np.array([0.5, 1.1]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability_array("p", np.array([np.nan]))


class TestCheckIndex:
    def test_accepts_in_range(self):
        assert check_index("i", 3, 5) == 3

    @pytest.mark.parametrize("bad", [-1, 5, 100])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            check_index("i", bad, 5)
