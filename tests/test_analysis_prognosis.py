"""Online lifetime prognosis from health history."""

import numpy as np
import pytest

from repro.analysis import fit_health_trend, prognose_lifetime


def synthetic_history(c=0.05, years_max=3.0, samples=7, noise=0.0, seed=0):
    years = np.linspace(0.0, years_max, samples)
    health = 1.0 - c * years ** (1.0 / 6.0)
    if noise > 0:
        health = health + np.random.default_rng(seed).normal(0, noise, samples)
        health = np.clip(health, 1e-3, 1.0)
    return years, health


class TestFit:
    def test_exact_recovery(self):
        years, health = synthetic_history(c=0.07)
        c, rms = fit_health_trend(years, health)
        assert c == pytest.approx(0.07, rel=1e-9)
        assert rms < 1e-12

    def test_noisy_recovery(self):
        years, health = synthetic_history(c=0.07, samples=40, noise=0.002)
        c, rms = fit_health_trend(years, health)
        assert c == pytest.approx(0.07, rel=0.1)
        assert rms < 0.01

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fit_health_trend(np.array([1.0]), np.array([0.9]))
        with pytest.raises(ValueError):
            fit_health_trend(np.array([0.0, 1.0]), np.array([0.9, 1.2]))
        with pytest.raises(ValueError):
            fit_health_trend(np.array([0.0, 0.0]), np.array([1.0, 1.0]))


class TestPrognosis:
    def test_projects_crossing_analytically(self):
        """With 1 - h = c t^(1/6), the threshold h* is crossed at
        t = ((1-h*)/c)^6."""
        years, health = synthetic_history(c=0.05)
        prognosis = prognose_lifetime(years, health, health_threshold=0.9)
        assert prognosis.projected_crossing_years == pytest.approx(
            (0.1 / 0.05) ** 6, rel=1e-9
        )

    def test_no_degradation_infinite(self):
        years = np.linspace(0.0, 3.0, 5)
        prognosis = prognose_lifetime(years, np.ones(5), 0.9)
        assert np.isinf(prognosis.projected_crossing_years)

    def test_early_samples_predict_late_crossing(self):
        """Three years of observation predict a ~15-year crossing to
        within a small relative error — prognosis years ahead."""
        c = 0.0366  # crosses h=0.9 near 15.6 years
        true_crossing = (0.1 / c) ** 6
        years, health = synthetic_history(c=c, years_max=3.0, samples=30,
                                          noise=0.001, seed=3)
        prognosis = prognose_lifetime(years, health, 0.9)
        assert prognosis.projected_crossing_years == pytest.approx(
            true_crossing, rel=0.35
        )

    def test_rejects_bad_threshold(self):
        years, health = synthetic_history()
        with pytest.raises(ValueError):
            prognose_lifetime(years, health, 1.5)

    def test_on_simulated_trajectory(self, chip, aging_table):
        """Fit the simulator's own health output: the projection is
        finite and beyond the observed window."""
        from repro.core import HayatManager
        from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig

        cfg = SimulationConfig(
            lifetime_years=3.0, epoch_years=0.5, dark_fraction_min=0.5,
            window_s=5.0, seed=8,
        )
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        result = LifetimeSimulator(cfg).run(ctx, HayatManager())
        years = result.years()
        avg_health = result.health_trajectory().mean(axis=1)
        prognosis = prognose_lifetime(years, avg_health, 0.8)
        assert prognosis.projected_crossing_years > years[-1]
        assert np.isfinite(prognosis.projected_crossing_years)
