"""Fused-window engine: bit identity with the step-by-step path.

The core contract of :mod:`repro.sim.window`: running a window through
compiled segments must reproduce the unfused reference loop bit for bit
— identical :class:`~repro.sim.results.EpochRecord` fields, health
trajectories and DTM event counts — in every regime the simulator
visits (quiet windows, mid-epoch arrivals, throttling and recovery,
migration-heavy baselines).  Also covers the trace-level machinery the
engine relies on (vectorized sampling, speculative-draw rollback) and
the observability counters that make the fast path visible.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.dtm import DTMPolicy
from repro.obs import MetricsRegistry, use_registry
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig
from repro.sim.window import CompiledSegment, rewind_unexecuted_draws
from repro.workload import poisson_arrivals
from repro.workload.traces import PhaseTrace

BASE_CFG = dict(
    lifetime_years=1.0,
    epoch_years=0.5,
    dark_fraction_min=0.5,
    window_s=20.0,
    seed=7,
)


def run_pair(chip, table, policy_factory, dtm_factory=None, arrivals=None, **kwargs):
    """Run the same scenario fused and unfused; returns both results."""
    results = []
    for fused in (True, False):
        cfg = SimulationConfig(**{**BASE_CFG, **kwargs}, fused_window=fused)
        ctx = ChipContext(chip, table, dark_fraction_min=cfg.dark_fraction_min)
        sim = LifetimeSimulator(
            cfg,
            dtm=dtm_factory() if dtm_factory is not None else None,
            arrivals_factory=arrivals,
        )
        results.append(sim.run(ctx, policy_factory()))
    return results


def assert_bit_identical(fused, unfused):
    """Every EpochRecord field must match exactly (no tolerance)."""
    assert len(fused.epochs) == len(unfused.epochs)
    for a, b in zip(fused.epochs, unfused.epochs):
        for field in dataclasses.fields(a):
            va, vb = getattr(a, field.name), getattr(b, field.name)
            assert np.array_equal(va, vb), (
                f"epoch {a.epoch_index}: field {field.name!r} differs "
                f"({va!r} != {vb!r})"
            )
    np.testing.assert_array_equal(
        fused.health_trajectory(), unfused.health_trajectory()
    )


def arrivals_factory(epoch, window_s, rng):
    """Poisson mid-window arrivals (same idiom as test_sim_arrivals)."""
    return poisson_arrivals(
        window_s, mean_interarrival_s=5.0, rng=rng, threads_per_app=(1, 2)
    )


class TestFusedBitIdentity:
    def test_quiet_run(self, chip, aging_table):
        fused, unfused = run_pair(chip, aging_table, HayatManager)
        assert_bit_identical(fused, unfused)

    def test_vaa_policy(self, chip, aging_table):
        """VAA's hottest-first moves exercise the migration path."""
        fused, unfused = run_pair(chip, aging_table, VAAManager)
        assert_bit_identical(fused, unfused)

    def test_throttle_and_recovery(self, chip, aging_table):
        """A much stricter Tsafe forces throttling mid-window, so fused
        segments must break at the trigger band and on recovery."""
        cfg_tsafe = SimulationConfig().tsafe_k - 15.0
        fused, unfused = run_pair(
            chip,
            aging_table,
            VAAManager,
            dtm_factory=lambda: DTMPolicy(tsafe_k=cfg_tsafe),
        )
        assert sum(e.dtm_events for e in fused.epochs) > 0
        assert_bit_identical(fused, unfused)

    def test_arrivals(self, chip, aging_table):
        """Arrival steps split segments; the streams must still agree."""
        fused, unfused = run_pair(
            chip,
            aging_table,
            HayatManager,
            arrivals=arrivals_factory,
            load_factor=0.6,
            seed=5,
        )
        assert fused.epochs[0].arrivals > 0
        assert_bit_identical(fused, unfused)


class TestWindowCounters:
    def _counters(self, chip, table, fused):
        cfg = SimulationConfig(**BASE_CFG, fused_window=fused)
        ctx = ChipContext(chip, table, dark_fraction_min=cfg.dark_fraction_min)
        registry = MetricsRegistry()
        with use_registry(registry):
            LifetimeSimulator(cfg).run(ctx, HayatManager())
        return registry.snapshot().counters

    def test_fused_run_reports_progress(self, chip, aging_table):
        counters = self._counters(chip, aging_table, fused=True)
        assert counters["sim.fused_steps"] > 0
        assert counters["sim.timeline_compiles"] > 0

    def test_unfused_run_reports_none(self, chip, aging_table):
        counters = self._counters(chip, aging_table, fused=False)
        assert counters.get("sim.fused_steps", 0) == 0
        assert counters.get("sim.timeline_compiles", 0) == 0


def _sibling_traces(seed):
    """Two traces sharing one generator, as one application's threads do."""
    rng = np.random.default_rng(seed)
    return [
        PhaseTrace(0.5, 0.3, 3.0, rng),
        PhaseTrace(0.6, 0.2, 2.0, rng),
    ]


class TestCompiledTimelines:
    def test_levels_match_activity_at(self):
        """Vectorized sampling equals the per-step scalar path exactly."""
        times = np.arange(200) * 0.25
        vec = _sibling_traces(seed=3)
        ref = _sibling_traces(seed=3)
        for trace in vec:
            trace.extend_to(float(times[-1]))
        for trace_v, trace_r in zip(vec, ref):
            scalar = np.array([trace_r.activity_at(float(t)) for t in times])
            np.testing.assert_array_equal(trace_v.levels_at(times), scalar)

    def test_rewind_replays_executed_prefix(self):
        """Speculative draws unwind to exactly the step-loop prefix.

        Compile-style extension draws phases for a whole segment up
        front; when a mid-segment break invalidates the tail,
        rewind_unexecuted_draws must leave every stream positioned as
        if only the executed steps had ever been simulated.
        """
        times = np.arange(64) * 1.0
        executed = 17

        # Reference: the unfused loop samples step by step, in core
        # order, and never sees the unexecuted steps.
        ref = _sibling_traces(seed=11)
        for t in times[:executed]:
            for trace in ref:
                trace.activity_at(float(t))

        # Compile path: snapshot, speculate over the full span, rewind.
        traces = _sibling_traces(seed=11)
        generator = traces[0].generator
        segment = CompiledSegment(
            start_step=0,
            dyn_power_w=np.zeros((len(times), 2)),
            duty_step=np.zeros(2),
            ips_total=0.0,
            busy=np.array([True, True]),
            throttled_idx=np.array([], dtype=int),
            traces=traces,
            rng_states=[(generator, generator.bit_generator.state)],
            phase_marks=[(trace, trace.phase_count) for trace in traces],
        )
        for trace in traces:
            trace.extend_to(float(times[-1]))
        rewind_unexecuted_draws(segment, times[:executed])

        for trace, trace_r in zip(traces, ref):
            assert trace.phase_count == trace_r.phase_count
            np.testing.assert_array_equal(
                trace._boundaries, trace_r._boundaries
            )
            np.testing.assert_array_equal(trace._levels, trace_r._levels)
        # After the rewind, continuing step by step from the break must
        # reproduce the reference stream's future draws too.
        future = [
            trace.activity_at(float(t)) for trace in traces for t in times[executed:]
        ]
        future_ref = [
            trace.activity_at(float(t)) for trace in ref for t in times[executed:]
        ]
        np.testing.assert_array_equal(future, future_ref)

    def test_truncate_restores_extension_determinism(self):
        """truncate_phases + state restore redraws identical phases."""
        rng = np.random.default_rng(21)
        trace = PhaseTrace(0.4, 0.1, 1.5, rng)
        mark = trace.phase_count
        state = trace.generator.bit_generator.state
        trace.extend_to(50.0)
        boundaries = list(trace._boundaries)
        trace.generator.bit_generator.state = state
        trace.truncate_phases(mark)
        trace.extend_to(50.0)
        np.testing.assert_array_equal(trace._boundaries, boundaries)
