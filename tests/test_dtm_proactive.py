"""Proactive DTM: prediction-driven preemption."""

import numpy as np
import pytest

from repro.dtm import DTMPolicy, ProactiveDTMPolicy
from repro.mapping import ChipState, DarkCoreMap
from repro.power import PowerModel
from repro.thermal import ThermalPredictor, ThermalRCNetwork
from repro.util.constants import T_SAFE_KELVIN
from repro.workload import make_mix


@pytest.fixture()
def setup(chip, floorplan):
    net = ThermalRCNetwork(floorplan)
    pm = PowerModel.for_chip(chip)
    predictor = ThermalPredictor.learn(net, pm)
    return predictor


def dense_state(num_threads=20):
    threads = make_mix(["bodytrack", "x264"], num_threads, np.random.default_rng(0)).threads
    dcm = DarkCoreMap.from_on_indices(64, np.arange(num_threads))
    state = ChipState(64, threads, dcm)
    for i in range(num_threads):
        state.place(i, i, 2.8)
    return state


class TestProactive:
    def test_preempts_predicted_hotspots(self, setup):
        """A dense hot block below Tsafe today but headed above it gets
        spread out before any sensor violation."""
        predictor = setup
        policy = ProactiveDTMPolicy(predictor, margin_k=10.0)
        state = dense_state(28)
        temps = np.full(64, T_SAFE_KELVIN - 4.0)  # warm but legal
        temps[32:] = 330.0
        fmax = np.full(64, 3.5)
        report = policy.enforce(state, temps, fmax)
        assert report.migrations > 0
        assert report.throttles == 0

    def test_no_action_when_prediction_is_cool(self, setup):
        predictor = setup
        policy = ProactiveDTMPolicy(predictor, margin_k=3.0)
        threads = make_mix(["blackscholes"], 4, np.random.default_rng(1)).threads
        dcm = DarkCoreMap.from_on_indices(64, [0, 20, 40, 60])
        state = ChipState(64, threads, dcm)
        for i, core in enumerate([0, 20, 40, 60]):
            state.place(i, core, 1.5)
        temps = np.full(64, 330.0)
        report = policy.enforce(state, temps, np.full(64, 3.5))
        assert report.events == 0

    def test_reactive_behaviour_preserved(self, setup):
        """Actual violations are still handled like the base policy."""
        predictor = setup
        policy = ProactiveDTMPolicy(predictor)
        state = dense_state(6)
        temps = np.full(64, 330.0)
        temps[2] = T_SAFE_KELVIN + 5.0
        report = policy.enforce(state, temps, np.full(64, 3.5))
        assert report.migrations >= 1
        assert state.assignment[2] == -1  # the violator was evacuated

    def test_fenced_cores_never_preemption_targets(self, setup):
        predictor = setup
        policy = ProactiveDTMPolicy(predictor, margin_k=3.0)
        state = dense_state()
        state.fence(np.arange(40, 64))
        temps = np.full(64, T_SAFE_KELVIN - 8.0)
        temps[32:] = 330.0
        report = policy.enforce(state, temps, np.full(64, 3.5))
        for _, target in report.migrated_pairs:
            assert target < 40

    def test_rejects_nonpositive_margin(self, setup):
        with pytest.raises(ValueError):
            ProactiveDTMPolicy(setup, margin_k=0.0)

    def test_fewer_emergencies_than_reactive_in_closed_loop(
        self, chip, aging_table
    ):
        """Over a lifetime with the dense contiguous policy, proactive
        enforcement produces no more throttles than reactive."""
        from repro.baselines import ContiguousManager
        from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig

        cfg = SimulationConfig(
            lifetime_years=1.0, dark_fraction_min=0.5, window_s=10.0, seed=4
        )
        throttles = {}
        for label, dtm in (
            ("reactive", None),
            ("proactive", "build"),
        ):
            ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
            if dtm == "build":
                dtm = ProactiveDTMPolicy(ctx.predictor)
            sim = LifetimeSimulator(cfg, dtm=dtm)
            result = sim.run(ctx, ContiguousManager())
            throttles[label] = sum(e.dtm_throttles for e in result.epochs)
        assert throttles["proactive"] <= throttles["reactive"]
