"""Learning the thermal predictor from observations only."""

import numpy as np
import pytest

from repro.power import PowerModel
from repro.thermal import ThermalPredictor, ThermalRCNetwork


@pytest.fixture(scope="module")
def setup(chip, floorplan):
    net = ThermalRCNetwork(floorplan)
    pm = PowerModel.for_chip(chip)
    return net, pm


def generate_samples(net, num_samples, rng, noise_k=0.0):
    """Random per-core power vectors and their steady-state temperatures."""
    n = net.num_cores
    powers = rng.uniform(0.0, 5.0, size=(num_samples, n))
    temps = np.array([net.steady_state(p) for p in powers])
    if noise_k > 0:
        temps = temps + rng.normal(0.0, noise_k, temps.shape)
    return powers, temps


class TestLearning:
    def test_exact_recovery_with_rich_data(self, setup):
        net, pm = setup
        rng = np.random.default_rng(0)
        powers, temps = generate_samples(net, 200, rng)
        learned = ThermalPredictor.learn_from_observations(
            powers, temps, net.config.ambient_k, pm
        )
        np.testing.assert_allclose(
            learned.influence, net.influence_matrix(), atol=1e-3
        )

    def test_noisy_recovery_still_predictive(self, setup):
        """With 0.5 K sensor noise the learned kernel predicts unseen
        configurations within ~2 K."""
        net, pm = setup
        rng = np.random.default_rng(1)
        powers, temps = generate_samples(net, 400, rng, noise_k=0.5)
        learned = ThermalPredictor.learn_from_observations(
            powers, temps, net.config.ambient_k, pm, ridge=1e-3
        )
        test_power = rng.uniform(0.0, 5.0, net.num_cores)
        truth = net.steady_state(test_power)
        predicted = net.config.ambient_k + learned.influence @ test_power
        assert np.abs(predicted - truth).max() < 2.0

    def test_learned_kernel_is_symmetric(self, setup):
        net, pm = setup
        rng = np.random.default_rng(2)
        powers, temps = generate_samples(net, 100, rng, noise_k=1.0)
        learned = ThermalPredictor.learn_from_observations(
            powers, temps, net.config.ambient_k, pm
        )
        np.testing.assert_allclose(learned.influence, learned.influence.T)

    def test_underdetermined_fit_degrades_gracefully(self, setup):
        """With fewer samples than cores the fit is not exact but must
        remain finite and usable."""
        net, pm = setup
        rng = np.random.default_rng(3)
        powers, temps = generate_samples(net, 16, rng)
        learned = ThermalPredictor.learn_from_observations(
            powers, temps, net.config.ambient_k, pm, ridge=1e-2
        )
        assert np.isfinite(learned.influence).all()

    def test_rejects_mismatched_samples(self, setup):
        net, pm = setup
        with pytest.raises(ValueError):
            ThermalPredictor.learn_from_observations(
                np.zeros((5, 64)), np.zeros((4, 64)), 318.0, pm
            )

    def test_rejects_nonpositive_ridge(self, setup):
        net, pm = setup
        with pytest.raises(ValueError):
            ThermalPredictor.learn_from_observations(
                np.zeros((5, 64)), np.zeros((5, 64)), 318.0, pm, ridge=0.0
            )
