"""VAA internals: hill climbing and region scoring."""

import numpy as np
import pytest

from repro.baselines.vaa import VAAManager, _climb
from repro.floorplan import Floorplan


class TestClimb:
    def test_reaches_local_maximum(self):
        fp = Floorplan(4, 4)
        score = np.arange(16, dtype=float)  # monotone: max at core 15
        assert _climb(fp, score, start=0) == 15

    def test_stays_at_peak(self):
        fp = Floorplan(4, 4)
        score = np.zeros(16)
        score[5] = 10.0
        assert _climb(fp, score, start=5) == 5

    def test_stops_at_local_not_global(self):
        fp = Floorplan(4, 4)
        score = np.zeros(16)
        score[0] = 5.0  # local peak at the corner
        score[15] = 10.0  # global peak far away
        assert _climb(fp, score, start=1) == 0


class TestHopMatrix:
    def test_matches_manhattan(self):
        fp = Floorplan(3, 4)
        hops = VAAManager._hop_matrix(fp)
        for a in range(fp.num_cores):
            for b in range(fp.num_cores):
                assert hops[a, b] == fp.manhattan_distance(a, b)

    def test_symmetric_zero_diagonal(self):
        fp = Floorplan(4, 4)
        hops = VAAManager._hop_matrix(fp)
        np.testing.assert_array_equal(hops, hops.T)
        np.testing.assert_array_equal(np.diag(hops), 0)


class TestFirstNode:
    def test_prefers_dense_feasible_region(self, chip, floorplan):
        """The first node lands where many free, fast-enough cores
        cluster."""
        manager = VAAManager(neighborhood_radius=2)
        hops = manager._hop_matrix(floorplan)
        free = np.ones(64, dtype=bool)
        free[:32] = False  # left half occupied
        fmax = chip.fmax_init_ghz
        fmins = np.full(8, 2.0)
        center = manager._first_node(floorplan, hops, free, fmax, fmins)
        assert free[center]
        assert center >= 32

    def test_raises_without_free_cores(self, chip, floorplan):
        manager = VAAManager()
        hops = manager._hop_matrix(floorplan)
        with pytest.raises(RuntimeError, match="no free cores"):
            manager._first_node(
                floorplan,
                hops,
                np.zeros(64, dtype=bool),
                chip.fmax_init_ghz,
                np.full(4, 2.0),
            )
