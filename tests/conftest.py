"""Shared fixtures: expensive objects are built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aging import CoreAgingEstimator, build_aging_table
from repro.floorplan import Floorplan, paper_floorplan
from repro.power import PowerModel
from repro.thermal import ThermalRCNetwork
from repro.variation import Chip, VariationParams, generate_population


@pytest.fixture(scope="session")
def floorplan() -> Floorplan:
    return paper_floorplan()


@pytest.fixture(scope="session")
def small_floorplan() -> Floorplan:
    return Floorplan(4, 4)


@pytest.fixture(scope="session")
def population(floorplan):
    return generate_population(3, seed=42, floorplan=floorplan)


@pytest.fixture(scope="session")
def chip(population) -> Chip:
    return population[0]


@pytest.fixture(scope="session")
def network(floorplan) -> ThermalRCNetwork:
    return ThermalRCNetwork(floorplan)


@pytest.fixture(scope="session")
def power_model(chip) -> PowerModel:
    return PowerModel.for_chip(chip)


@pytest.fixture(scope="session")
def aging_table():
    # A coarser grid than the production default keeps the session-wide
    # build fast while exercising the same code paths.
    estimator = CoreAgingEstimator()
    return build_aging_table(
        estimator,
        temp_grid_k=np.arange(290.0, 431.0, 20.0),
        duty_grid=np.concatenate([[0.0], np.geomspace(0.05, 1.0, 8)]),
        age_grid_years=np.concatenate([[0.0], np.geomspace(0.1, 120.0, 16)]),
    )


@pytest.fixture(scope="session")
def small_params() -> VariationParams:
    return VariationParams(grid_per_core=2, critical_path_points=3)
