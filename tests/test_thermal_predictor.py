"""Online thermal predictor: accuracy and batch consistency."""

import numpy as np
import pytest

from repro.power import PowerModel
from repro.thermal import ThermalPredictor, ThermalRCNetwork, solve_coupled_steady_state


@pytest.fixture(scope="module")
def setup(chip, floorplan):
    net = ThermalRCNetwork(floorplan)
    pm = PowerModel.for_chip(chip)
    pred = ThermalPredictor.learn(net, pm)
    return net, pm, pred


def _state(on_pattern, freq=3.0, act=0.6):
    on = np.asarray(on_pattern, dtype=bool)
    return np.full(64, freq) * on, np.full(64, act) * on, on


class TestPredictor:
    def test_warm_start_accuracy(self, setup):
        """Within ~2 K of ground truth when started from a nearby state —
        the operating regime of Algorithm 1."""
        net, pm, pred = setup
        on = np.array([(r + c) % 2 == 0 for r in range(8) for c in range(8)])
        freq, act, on = _state(on)
        truth, _ = solve_coupled_steady_state(net, pm, freq, act, on)
        moved = on.copy()
        moved[0], moved[1] = False, True
        freq2, act2, on2 = _state(moved)
        truth2, _ = solve_coupled_steady_state(net, pm, freq2, act2, on2)
        estimate = pred.predict(freq2, act2, on2, initial_temps_k=truth)
        assert np.abs(estimate - truth2).max() < 2.0

    def test_batch_matches_single(self, setup):
        net, pm, pred = setup
        rng = np.random.default_rng(0)
        batch_on = rng.random((5, 64)) < 0.5
        freq = np.full((5, 64), 3.0) * batch_on
        act = np.full((5, 64), 0.6) * batch_on
        warm = np.full(64, 350.0)
        batched = pred.predict_batch(freq, act, batch_on, initial_temps_k=warm)
        for row in range(5):
            single = pred.predict(
                freq[row], act[row], batch_on[row], initial_temps_k=warm
            )
            np.testing.assert_allclose(batched[row], single, rtol=1e-12)

    def test_ranks_hotspots_correctly(self, setup):
        """Even cold-started, the predictor must order dense vs spread
        configurations correctly — ranking is what Algorithm 1 needs."""
        net, pm, pred = setup
        dense = np.zeros(64, dtype=bool)
        dense[:32] = True
        spread = np.array([(r + c) % 2 == 0 for r in range(8) for c in range(8)])
        t_dense = pred.predict(*_state(dense))
        t_spread = pred.predict(*_state(spread))
        assert t_dense.max() > t_spread.max()

    def test_learned_influence_is_exact_network_kernel(self, setup):
        net, pm, pred = setup
        np.testing.assert_allclose(pred.influence, net.influence_matrix())

    def test_dark_chip_predicts_near_ambient(self, setup):
        _, _, pred = setup
        temps = pred.predict(np.zeros(64), np.zeros(64), np.zeros(64, dtype=bool))
        assert temps.max() - pred.ambient_k < 1.0

    def test_rejects_mismatched_batch_shapes(self, setup):
        _, _, pred = setup
        with pytest.raises(ValueError):
            pred.predict_batch(
                np.zeros((2, 64)), np.zeros((3, 64)), np.zeros((2, 64), dtype=bool)
            )

    def test_rejects_bad_initial_shape(self, setup):
        _, _, pred = setup
        with pytest.raises(ValueError):
            pred.predict_batch(
                np.zeros((1, 64)),
                np.zeros((1, 64)),
                np.zeros((1, 64), dtype=bool),
                initial_temps_k=np.zeros(3),
            )

    def test_rejects_nonsquare_influence(self, setup):
        _, pm, _ = setup
        with pytest.raises(ValueError):
            ThermalPredictor(np.zeros((3, 4)), 318.0, pm)
