"""Aging sensor quantization."""

import numpy as np
import pytest

from repro.aging import AgingSensor


class TestAgingSensor:
    def test_quantizes_downward(self):
        sensor = AgingSensor(resolution=0.01)
        out = sensor.read(np.array([0.999, 0.955]))
        np.testing.assert_allclose(out, [0.99, 0.95])

    def test_full_health_reads_full(self):
        sensor = AgingSensor(resolution=0.01)
        assert sensor.read(np.array([1.0]))[0] == pytest.approx(1.0)

    def test_never_reports_above_truth(self):
        sensor = AgingSensor(resolution=0.005)
        truth = np.random.default_rng(0).uniform(0.5, 1.0, 200)
        reads = sensor.read(truth)
        assert (reads <= truth + 1e-12).all()

    def test_error_bounded_by_resolution(self):
        sensor = AgingSensor(resolution=0.005)
        truth = np.random.default_rng(1).uniform(0.5, 1.0, 200)
        reads = sensor.read(truth)
        assert (truth - reads).max() <= 0.005 + 1e-12

    def test_never_reports_zero(self):
        sensor = AgingSensor(resolution=0.01)
        assert sensor.read(np.array([0.001]))[0] > 0.0

    def test_rejects_health_above_one(self):
        with pytest.raises(ValueError):
            AgingSensor().read(np.array([1.1]))

    def test_rejects_resolution_of_one(self):
        with pytest.raises(ValueError):
            AgingSensor(resolution=1.0)
