"""Campaign orchestration and normalized comparisons."""

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.sim import SimulationConfig, run_campaign
from repro.variation import generate_population


@pytest.fixture(scope="module")
def campaign(aging_table):
    cfg = SimulationConfig(
        lifetime_years=1.0,
        epoch_years=0.5,
        dark_fraction_min=0.5,
        window_s=5.0,
        seed=9,
    )
    population = generate_population(2, seed=11)
    return run_campaign(
        [VAAManager(), HayatManager()],
        config=cfg,
        population=population,
        table=aging_table,
    )


class TestCampaign:
    def test_all_policies_ran_all_chips(self, campaign):
        assert campaign.policies() == ["vaa", "hayat"]
        assert len(campaign.results["vaa"]) == 2
        assert len(campaign.results["hayat"]) == 2

    def test_same_silicon_for_both_policies(self, campaign):
        for a, b in zip(campaign.results["vaa"], campaign.results["hayat"]):
            assert a.chip_id == b.chip_id
            np.testing.assert_array_equal(a.fmax_init_ghz, b.fmax_init_ghz)

    def test_normalized_metrics_finite(self, campaign):
        for fn in (
            campaign.normalized_temp_rise,
            campaign.normalized_chip_fmax_aging,
            campaign.normalized_avg_fmax_aging,
        ):
            values = fn("vaa", "hayat")
            assert np.isfinite(values).all()

    def test_baseline_normalizes_to_one(self, campaign):
        np.testing.assert_allclose(
            campaign.normalized_temp_rise("vaa", "vaa"), 1.0
        )

    def test_trajectory_shape(self, campaign):
        traj = campaign.mean_avg_fmax_trajectory("hayat")
        assert traj.shape == (2,)

    def test_lifetime_summary_runs(self, campaign):
        value = campaign.mean_lifetime_at_requirement("hayat", 1.0)
        assert value == pytest.approx(1.0)  # loose requirement -> full span

    def test_progress_callback(self, aging_table):
        seen = []
        cfg = SimulationConfig(
            lifetime_years=0.5, epoch_years=0.5, window_s=3.0, seed=1
        )
        run_campaign(
            [HayatManager()],
            num_chips=1,
            config=cfg,
            table=aging_table,
            progress=lambda policy, chip: seen.append((policy, chip)),
        )
        assert seen == [("hayat", "chip-00")]
