"""Campaign orchestration and normalized comparisons."""

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.sim import (
    CampaignResult,
    EpochRecord,
    LifetimeResult,
    SimulationConfig,
    run_campaign,
)
from repro.util.constants import AMBIENT_KELVIN
from repro.variation import generate_population


def synthetic_result(
    policy: str,
    chip_id: str = "chip-00",
    num_epochs: int = 2,
    avg_temp_k: float = 340.0,
    health_end: float = 0.9,
) -> LifetimeResult:
    """A hand-built lifetime: enough structure for the aggregations."""
    result = LifetimeResult(
        chip_id=chip_id,
        policy_name=policy,
        dark_fraction_min=0.5,
        fmax_init_ghz=np.array([2.0, 3.0]),
    )
    for index in range(num_epochs):
        health = 1.0 - (1.0 - health_end) * (index + 1) / max(num_epochs, 1)
        result.epochs.append(
            EpochRecord(
                epoch_index=index,
                start_years=0.5 * index,
                length_years=0.5,
                mix_description="synthetic",
                dcm_on=np.array([True, False]),
                worst_temps_k=np.array([avg_temp_k, avg_temp_k]),
                avg_temp_k=avg_temp_k,
                peak_temp_k=avg_temp_k + 5.0,
                dtm_migrations=1,
                dtm_throttles=0,
                duties=np.array([0.5, 0.0]),
                health_after=np.array([health, health]),
                qos_violations=0,
                total_ips=1e9,
            )
        )
    return result


@pytest.fixture(scope="module")
def campaign(aging_table):
    cfg = SimulationConfig(
        lifetime_years=1.0,
        epoch_years=0.5,
        dark_fraction_min=0.5,
        window_s=5.0,
        seed=9,
    )
    population = generate_population(2, seed=11)
    return run_campaign(
        [VAAManager(), HayatManager()],
        config=cfg,
        population=population,
        table=aging_table,
    )


class TestCampaign:
    def test_all_policies_ran_all_chips(self, campaign):
        assert campaign.policies() == ["vaa", "hayat"]
        assert len(campaign.results["vaa"]) == 2
        assert len(campaign.results["hayat"]) == 2

    def test_same_silicon_for_both_policies(self, campaign):
        for a, b in zip(campaign.results["vaa"], campaign.results["hayat"]):
            assert a.chip_id == b.chip_id
            np.testing.assert_array_equal(a.fmax_init_ghz, b.fmax_init_ghz)

    def test_normalized_metrics_finite(self, campaign):
        for fn in (
            campaign.normalized_temp_rise,
            campaign.normalized_chip_fmax_aging,
            campaign.normalized_avg_fmax_aging,
        ):
            values = fn("vaa", "hayat")
            assert np.isfinite(values).all()

    def test_baseline_normalizes_to_one(self, campaign):
        np.testing.assert_allclose(
            campaign.normalized_temp_rise("vaa", "vaa"), 1.0
        )

    def test_trajectory_shape(self, campaign):
        traj = campaign.mean_avg_fmax_trajectory("hayat")
        assert traj.shape == (2,)

    def test_lifetime_summary_runs(self, campaign):
        value = campaign.mean_lifetime_at_requirement("hayat", 1.0)
        assert value == pytest.approx(1.0)  # loose requirement -> full span

    def test_no_failures_on_clean_campaign(self, campaign):
        assert campaign.failures == []

    def test_progress_callback(self, aging_table):
        seen = []
        cfg = SimulationConfig(
            lifetime_years=0.5, epoch_years=0.5, window_s=3.0, seed=1
        )
        run_campaign(
            [HayatManager()],
            num_chips=1,
            config=cfg,
            table=aging_table,
            progress=lambda policy, chip: seen.append((policy, chip)),
        )
        assert seen == [("hayat", "chip-00")]


class TestAggregationEdgeCases:
    """Pinned behavior of the normalization layer on degenerate inputs."""

    def _campaign(self, pairs) -> CampaignResult:
        campaign = CampaignResult(config=SimulationConfig())
        campaign.results["vaa"] = [base for base, _ in pairs]
        campaign.results["hayat"] = [other for _, other in pairs]
        return campaign

    def test_dtm_normalization_reads_baseline_total_once(self):
        """Regression: ``normalized_dtm_events`` called the baseline's
        ``total_dtm_events()`` twice per chip (guard + ratio); the total
        is a per-epoch sum, so large campaigns paid it double.  Pin the
        hoist by counting calls on the baseline result."""
        base = synthetic_result("vaa")
        other = synthetic_result("hayat")
        calls = []
        original = base.total_dtm_events
        base.total_dtm_events = lambda: calls.append(1) or original()
        campaign = self._campaign([(base, other)])
        values = campaign.normalized_dtm_events("vaa", "hayat")
        assert values.shape == (1,)
        assert len(calls) == 1

    def test_zero_baseline_temp_rise_skipped(self):
        """Regression: a baseline at/below ambient yielded inf/nan that
        poisoned the sweep-level means."""
        cold = synthetic_result("vaa", avg_temp_k=AMBIENT_KELVIN)  # rise 0
        warm_base = synthetic_result("vaa", avg_temp_k=340.0)
        warm_other = synthetic_result("hayat", avg_temp_k=330.0)
        campaign = self._campaign(
            [(cold, synthetic_result("hayat")), (warm_base, warm_other)]
        )
        values = campaign.normalized_temp_rise("vaa", "hayat")
        assert values.shape == (1,)
        assert np.isfinite(values).all()
        expected = (330.0 - AMBIENT_KELVIN) / (340.0 - AMBIENT_KELVIN)
        np.testing.assert_allclose(values[0], expected)

    def test_pairs_with_a_failed_side_are_skipped(self):
        """An empty (failed-job) lifetime on either side drops the chip
        from every normalized comparison instead of injecting nan."""
        complete = (
            synthetic_result("vaa", "chip-00"),
            synthetic_result("hayat", "chip-00"),
        )
        failed_policy = (
            synthetic_result("vaa", "chip-01"),
            synthetic_result("hayat", "chip-01", num_epochs=0),
        )
        failed_base = (
            synthetic_result("vaa", "chip-02", num_epochs=0),
            synthetic_result("hayat", "chip-02"),
        )
        campaign = self._campaign([complete, failed_policy, failed_base])
        for values in (
            campaign.normalized_dtm_events("vaa", "hayat"),
            campaign.normalized_temp_rise("vaa", "hayat"),
            campaign.normalized_chip_fmax_aging("vaa", "hayat"),
            campaign.normalized_avg_fmax_aging("vaa", "hayat"),
        ):
            assert values.shape == (1,)
            assert np.isfinite(values).all()

    def test_mean_trajectory_skips_empty_lifetimes(self):
        campaign = self._campaign(
            [
                (synthetic_result("vaa"), synthetic_result("hayat")),
                (
                    synthetic_result("vaa", "chip-01"),
                    synthetic_result("hayat", "chip-01", num_epochs=0),
                ),
            ]
        )
        trajectory = campaign.mean_avg_fmax_trajectory("hayat")
        assert trajectory.shape == (2,)
        np.testing.assert_array_equal(
            trajectory,
            campaign.results["hayat"][0].avg_fmax_trajectory_ghz(),
        )

    def test_mean_trajectory_all_failed_is_empty(self):
        campaign = self._campaign(
            [
                (
                    synthetic_result("vaa", num_epochs=0),
                    synthetic_result("hayat", num_epochs=0),
                )
            ]
        )
        assert campaign.mean_avg_fmax_trajectory("hayat").shape == (0,)

    def test_mean_trajectory_ragged_epochs_rejected(self):
        """Regression: np.mean over inhomogeneous per-chip trajectories
        must fail loudly, not broadcast garbage."""
        campaign = self._campaign(
            [
                (synthetic_result("vaa"), synthetic_result("hayat", num_epochs=2)),
                (
                    synthetic_result("vaa", "chip-01"),
                    synthetic_result("hayat", "chip-01", num_epochs=3),
                ),
            ]
        )
        with pytest.raises(ValueError, match="inhomogeneous epoch counts"):
            campaign.mean_avg_fmax_trajectory("hayat")

    def test_mean_lifetime_skips_empty_lifetimes(self):
        campaign = self._campaign(
            [
                (synthetic_result("vaa"), synthetic_result("hayat")),
                (
                    synthetic_result("vaa", "chip-01"),
                    synthetic_result("hayat", "chip-01", num_epochs=0),
                ),
            ]
        )
        value = campaign.mean_lifetime_at_requirement("hayat", 0.1)
        assert value == pytest.approx(1.0)  # the completed chip's span

    def test_mean_lifetime_all_failed_is_nan(self):
        campaign = self._campaign(
            [
                (
                    synthetic_result("vaa", num_epochs=0),
                    synthetic_result("hayat", num_epochs=0),
                )
            ]
        )
        assert np.isnan(campaign.mean_lifetime_at_requirement("hayat", 1.0))
