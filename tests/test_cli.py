"""Command-line interface."""

import csv
import json

import pytest

from repro.cli import main


class TestChipCommand:
    def test_prints_maps(self, capsys):
        assert main(["chip", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "initial fmax" in out
        assert "leakage multipliers" in out
        assert "frequency spread" in out

    def test_chip_index(self, capsys):
        main(["chip", "--seed", "7", "--index", "1"])
        assert "chip-01" in capsys.readouterr().out


class TestSimulateCommand:
    def test_runs_and_exports(self, capsys, tmp_path):
        json_path = str(tmp_path / "out.json")
        csv_path = str(tmp_path / "out.csv")
        code = main(
            [
                "simulate",
                "--policy", "hayat",
                "--years", "0.5",
                "--json", json_path,
                "--csv", csv_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DTM events" in out
        with open(json_path) as handle:
            payload = json.load(handle)
        assert payload[0]["policy_name"] == "hayat"
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1  # one epoch at 0.5 years

    @pytest.mark.parametrize("policy", ["vaa", "contiguous", "coolest", "random"])
    def test_all_policies_available(self, capsys, policy):
        assert main(["simulate", "--policy", policy, "--years", "0.5"]) == 0


class TestCampaignCommand:
    def test_small_campaign(self, capsys, tmp_path):
        csv_path = str(tmp_path / "campaign.csv")
        code = main(
            ["campaign", "--chips", "1", "--years", "0.5", "--csv", csv_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Normalized comparison" in out
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert {r["policy"] for r in rows} == {"vaa", "hayat"}


class TestCampaignSupervisionFlags:
    def test_checkpoint_written_and_resumed(self, capsys, tmp_path):
        ckpt = str(tmp_path / "campaign.jsonl")
        args = [
            "campaign", "--chips", "1", "--years", "0.5",
            "--checkpoint", ckpt, "--retries", "1",
        ]
        assert main(args) == 0
        with open(ckpt) as handle:
            recorded = [line for line in handle if line.strip()]
        assert len(recorded) == 2  # one chip x {vaa, hayat}
        capsys.readouterr()
        # Resume: replays both jobs from the checkpoint, same report.
        assert main(args + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Normalized comparison" in out
        assert "campaign.resumed_jobs" in out
        with open(ckpt) as handle:
            assert [line for line in handle if line.strip()] == recorded

    def test_allow_partial_flag_accepted(self, capsys):
        code = main(
            [
                "campaign", "--chips", "1", "--years", "0.5",
                "--allow-partial", "--job-timeout", "600",
            ]
        )
        assert code == 0
        assert "Normalized comparison" in capsys.readouterr().out


class TestScenarioCommand:
    def test_runs_scenario_file(self, capsys, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-scenario",
                    "population": {"num_chips": 1, "seed": 4},
                    "config": {"lifetime_years": 0.5, "window_s": 5.0},
                    "policies": [{"type": "hayat"}],
                }
            )
        )
        assert main(["run-scenario", str(path)]) == 0
        assert "cli-scenario" in capsys.readouterr().out

    def test_bad_scenario_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"policies": [{"type": "magic"}]}))
        assert main(["run-scenario", str(path)]) == 2
        assert "scenario error" in capsys.readouterr().out


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        code = main(
            ["sweep", "--fractions", "0.5", "--chips", "1", "--years", "0.5"]
        )
        assert code == 0
        assert "Dark-silicon sweep" in capsys.readouterr().out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "magic"])
