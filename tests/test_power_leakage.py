"""Leakage model: paper constants, temperature dependence, gating."""

import numpy as np
import pytest

from repro.power import LeakageModel
from repro.power.leakage import REFERENCE_TEMP_K


class TestPaperConstants:
    def test_nominal_values(self):
        model = LeakageModel()
        assert model.nominal_w == pytest.approx(1.18)
        assert model.gated_w == pytest.approx(0.019)

    def test_nominal_at_reference(self):
        model = LeakageModel()
        assert model.power_w(REFERENCE_TEMP_K) == pytest.approx(1.18)


class TestTemperatureDependence:
    def test_unity_at_reference(self):
        assert LeakageModel().temperature_factor(REFERENCE_TEMP_K) == pytest.approx(1.0)

    def test_monotone_increasing(self):
        model = LeakageModel()
        temps = np.linspace(300.0, 420.0, 25)
        factors = model.temperature_factor(temps)
        assert (np.diff(factors) > 0).all()

    def test_doubling_scale(self):
        """beta = 0.014/K doubles leakage roughly every 50 K."""
        model = LeakageModel()
        ratio = model.temperature_factor(REFERENCE_TEMP_K + 50.0)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_saturates_at_fit_limit(self):
        model = LeakageModel()
        at_limit = model.temperature_factor(model.fit_limit_k)
        assert model.temperature_factor(model.fit_limit_k + 100.0) == pytest.approx(
            at_limit
        )

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            LeakageModel().temperature_factor(0.0)


class TestGatingAndVariation:
    def test_gated_core_draws_residual(self):
        model = LeakageModel()
        assert model.power_w(400.0, 2.0, powered_on=False) == pytest.approx(0.019)

    def test_gated_leakage_temperature_independent(self):
        model = LeakageModel()
        a = model.power_w(300.0, 1.0, powered_on=False)
        b = model.power_w(420.0, 1.0, powered_on=False)
        assert a == b

    def test_variation_scales_linearly(self):
        model = LeakageModel()
        base = model.power_w(350.0, 1.0)
        assert model.power_w(350.0, 2.5) == pytest.approx(2.5 * base)

    def test_array_power_states(self):
        model = LeakageModel()
        out = model.power_w(
            np.array([330.0, 330.0]),
            np.array([1.0, 1.0]),
            powered_on=np.array([True, False]),
        )
        np.testing.assert_allclose(out, [1.18, 0.019])

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            LeakageModel().power_w(330.0, 0.0)

    def test_rejects_fit_limit_below_reference(self):
        with pytest.raises(ValueError):
            LeakageModel(fit_limit_k=300.0)
