"""DTM: migrate-then-throttle behaviour."""

import numpy as np
import pytest

from repro.dtm import DTMPolicy
from repro.mapping import ChipState, DarkCoreMap
from repro.util.constants import T_SAFE_KELVIN
from repro.workload import make_mix


@pytest.fixture()
def state():
    threads = make_mix(["bodytrack", "x264"], 6, np.random.default_rng(0)).threads
    dcm = DarkCoreMap.from_on_indices(16, np.arange(6))
    st = ChipState(16, threads, dcm)
    for i in range(6):
        st.place(i, i, 2.6)
    return st


def temps_with_hot(core, hot_k=T_SAFE_KELVIN + 5.0, base_k=330.0, n=16):
    temps = np.full(n, base_k)
    temps[core] = hot_k
    return temps


class TestMigration:
    def test_hot_core_migrates_to_coldest(self, state):
        policy = DTMPolicy()
        temps = temps_with_hot(2)
        temps[15] = 320.0  # coldest eligible (dark, will be woken)
        fmax = np.full(16, 3.5)
        report = policy.enforce(state, temps, fmax)
        assert report.migrations == 1
        assert report.throttles == 0
        assert state.core_of_thread(2) == 15
        assert not state.powered_on[2]

    def test_no_violation_no_action(self, state):
        policy = DTMPolicy()
        report = policy.enforce(state, np.full(16, 330.0), np.full(16, 3.5))
        assert report.events == 0

    def test_target_must_be_cold_enough(self, state):
        """Cores between Tsafe-10 and Tsafe are not acceptable targets."""
        policy = DTMPolicy()
        temps = temps_with_hot(2)
        temps[6:] = T_SAFE_KELVIN - 5.0  # warm, inside the headroom band
        report = policy.enforce(state, temps, np.full(16, 3.5))
        assert report.migrations == 0
        assert report.throttles == 1

    def test_target_must_meet_frequency_requirement(self, state):
        policy = DTMPolicy()
        temps = temps_with_hot(2)
        fmax = np.full(16, 3.5)
        fmax[6:] = 0.5  # all idle cores too slow for any thread
        report = policy.enforce(state, temps, fmax)
        assert report.migrations == 0
        assert report.throttles == 1

    def test_two_hot_cores_get_distinct_targets(self, state):
        policy = DTMPolicy()
        temps = temps_with_hot(0)
        temps[1] = T_SAFE_KELVIN + 3.0
        temps[14] = 320.0
        temps[15] = 321.0
        report = policy.enforce(state, temps, np.full(16, 3.5))
        assert report.migrations == 2
        targets = {pair[1] for pair in report.migrated_pairs}
        assert len(targets) == 2

    def test_hottest_handled_first(self, state):
        policy = DTMPolicy()
        temps = temps_with_hot(0, hot_k=T_SAFE_KELVIN + 2.0)
        temps[1] = T_SAFE_KELVIN + 8.0  # hotter
        temps[15] = 320.0
        report = policy.enforce(state, temps, np.full(16, 3.5))
        # The hotter core (1) claims the single coldest target first.
        assert report.migrated_pairs[0][0] == 1


class TestThrottling:
    def test_throttle_reduces_frequency(self, state):
        policy = DTMPolicy(throttle_factor=0.7)
        temps = temps_with_hot(2)
        temps[:] = T_SAFE_KELVIN + 2.0  # everything hot, no targets
        before = state.freq_ghz[2]
        report = policy.enforce(state, temps, np.full(16, 3.5))
        assert report.throttles >= 1
        assert state.freq_ghz[2] == pytest.approx(before * 0.7)
        assert state.throttled[2]

    def test_report_merge(self, state):
        policy = DTMPolicy()
        temps = temps_with_hot(2)
        temps[15] = 320.0
        a = policy.enforce(state, temps, np.full(16, 3.5))
        b = policy.enforce(state, np.full(16, 330.0), np.full(16, 3.5))
        a.merge(b)
        assert a.events == 1


class TestValidation:
    def test_rejects_wrong_temps_shape(self, state):
        with pytest.raises(ValueError):
            DTMPolicy().enforce(state, np.zeros(4), np.full(16, 3.5))

    def test_rejects_bad_throttle_factor(self):
        with pytest.raises(ValueError):
            DTMPolicy(throttle_factor=1.0)
