"""Phase traces: determinism and statistics."""

import numpy as np
import pytest

from repro.workload import PhaseTrace


def make_trace(seed=0, mean=0.6, jitter=0.2, phase=2.0):
    return PhaseTrace(mean, jitter, phase, np.random.default_rng(seed))


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = make_trace(5)
        b = make_trace(5)
        times = np.linspace(0, 100, 57)
        assert [a.activity_at(t) for t in times] == [b.activity_at(t) for t in times]

    def test_query_order_does_not_matter(self):
        a = make_trace(5)
        b = make_trace(5)
        forward = [a.activity_at(t) for t in (1.0, 50.0, 99.0)]
        backward = [b.activity_at(t) for t in (99.0, 50.0, 1.0)]
        assert forward == backward[::-1]


class TestValues:
    def test_within_band(self):
        trace = make_trace(1, mean=0.6, jitter=0.2)
        values = [trace.activity_at(t) for t in np.linspace(0, 200, 400)]
        assert min(values) >= 0.4
        assert max(values) <= 0.8

    def test_piecewise_constant(self):
        trace = make_trace(2, phase=10.0)
        # Two queries within a microsecond land in the same phase.
        assert trace.activity_at(1.0) == trace.activity_at(1.000001)

    def test_phases_change(self):
        trace = make_trace(3, jitter=0.2, phase=1.0)
        values = {trace.activity_at(t) for t in np.linspace(0, 100, 200)}
        assert len(values) > 10

    def test_zero_jitter_is_constant(self):
        trace = PhaseTrace(0.5, 0.0, 1.0, np.random.default_rng(0))
        values = {trace.activity_at(t) for t in np.linspace(0, 50, 100)}
        assert values == {0.5}

    def test_long_run_mean(self):
        trace = make_trace(4, mean=0.6, jitter=0.2, phase=1.0)
        assert trace.mean_over(0.0, 2000.0) == pytest.approx(0.6, abs=0.03)


class TestMeanOver:
    def test_constant_phase_exact(self):
        trace = make_trace(6, phase=100.0)
        level = trace.activity_at(1.0)
        assert trace.mean_over(0.5, 1.5) == pytest.approx(level)

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            make_trace().mean_over(5.0, 5.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            make_trace().activity_at(-1.0)


class TestValidation:
    def test_rejects_band_overflow(self):
        with pytest.raises(ValueError):
            PhaseTrace(0.95, 0.1, 1.0, np.random.default_rng(0))

    def test_rejects_nonpositive_phase(self):
        with pytest.raises(ValueError):
            PhaseTrace(0.5, 0.1, 0.0, np.random.default_rng(0))
