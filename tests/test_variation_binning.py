"""Speed binning of chip populations."""

import numpy as np
import pytest

from repro.variation import generate_population
from repro.variation.binning import bin_population, chip_grade_ghz, yield_fraction


@pytest.fixture(scope="module")
def pop():
    return generate_population(20, seed=7)


class TestGrading:
    def test_median_grade_between_extremes(self, pop):
        grades = chip_grade_ghz(pop)
        fmax = pop.fmax_matrix_ghz()
        assert (grades >= fmax.min(axis=1)).all()
        assert (grades <= fmax.max(axis=1)).all()

    def test_best_core_grading(self, pop):
        grades = chip_grade_ghz(pop, percentile=100.0)
        np.testing.assert_allclose(grades, pop.fmax_matrix_ghz().max(axis=1))

    def test_rejects_bad_percentile(self, pop):
        with pytest.raises(ValueError):
            chip_grade_ghz(pop, percentile=120.0)


class TestBinning:
    def test_every_chip_assigned_once(self, pop):
        bins = bin_population(pop, [2.8, 3.0, 3.2])
        assigned = [i for b in bins for i in b.chip_indices]
        assert sorted(assigned) == list(range(len(pop)))

    def test_highest_eligible_bin_wins(self, pop):
        bins = bin_population(pop, [2.8, 3.0])
        grades = chip_grade_ghz(pop)
        for b in bins:
            for chip_index in b.chip_indices:
                if b.label != "reject":
                    assert grades[chip_index] >= b.floor_ghz
        top = next(b for b in bins if b.floor_ghz == 3.0)
        for chip_index in top.chip_indices:
            assert grades[chip_index] >= 3.0

    def test_bins_ordered_highest_first(self, pop):
        bins = bin_population(pop, [2.8, 3.0, 3.2])
        floors = [b.floor_ghz for b in bins]
        assert floors == sorted(floors, reverse=True)
        assert bins[-1].label == "reject"

    def test_rejects_unsorted_floors(self, pop):
        with pytest.raises(ValueError):
            bin_population(pop, [3.0, 2.8])


class TestYield:
    def test_full_yield_at_zero_floor(self, pop):
        bins = bin_population(pop, [2.8, 3.0])
        assert yield_fraction(bins, 0.0) == pytest.approx(1.0)

    def test_yield_decreases_with_floor(self, pop):
        bins = bin_population(pop, [2.6, 2.9, 3.2])
        y = [yield_fraction(bins, f) for f in (2.6, 2.9, 3.2)]
        assert y[0] >= y[1] >= y[2]
