"""Cross-cutting hypothesis property tests on model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging import NBTIModel
from repro.core import WeightingFunction
from repro.floorplan import Floorplan
from repro.thermal import ThermalRCNetwork


@pytest.fixture(scope="module")
def small_net():
    return ThermalRCNetwork(Floorplan(3, 3))


@settings(max_examples=30, deadline=None)
@given(
    power_a=st.lists(st.floats(0.0, 8.0), min_size=9, max_size=9),
    power_b=st.lists(st.floats(0.0, 8.0), min_size=9, max_size=9),
)
def test_thermal_monotone_in_power(power_a, power_b):
    """Adding power anywhere never cools anything (M-matrix property)."""
    net = ThermalRCNetwork(Floorplan(3, 3))
    a = np.array(power_a)
    b = np.maximum(a, np.array(power_b))
    t_a = net.steady_state(a)
    t_b = net.steady_state(b)
    assert (t_b >= t_a - 1e-9).all()


@settings(max_examples=40, deadline=None)
@given(
    temp=st.floats(300.0, 420.0),
    duty=st.floats(0.0, 1.0),
    y1=st.floats(0.0, 10.0),
    y2=st.floats(0.0, 10.0),
)
def test_nbti_additive_in_equivalent_age(temp, duty, y1, y2):
    """dVth(y1+y2) >= dVth(y1): stress never heals in the long-term
    envelope, and the shift is concave (subadditive) in time."""
    model = NBTIModel()
    total = model.delta_vth(temp, y1 + y2, duty)
    first = model.delta_vth(temp, y1, duty)
    second = model.delta_vth(temp, y2, duty)
    assert total >= first - 1e-15
    assert total <= first + second + 1e-12  # concavity: subadditive


@settings(max_examples=40, deadline=None)
@given(
    fmax=st.floats(1.0, 4.0),
    freq=st.floats(0.5, 4.0),
    h_next=st.floats(0.5, 1.0),
    h_now=st.floats(0.5, 1.0),
    years=st.floats(0.0, 10.0),
)
def test_weighting_bounded_and_finite(fmax, freq, h_next, h_now, years):
    wf = WeightingFunction()
    weight = wf.weight(fmax, freq, h_next, h_now, years)
    assert np.isfinite(weight)
    # Frequency term capped at wmax, health term at beta * h_next/h_now.
    _, beta = wf.config.coefficients(years)
    assert weight <= wf.config.wmax + beta * (h_next / h_now) + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    duty=st.floats(0.05, 1.0),
    temp=st.floats(310.0, 410.0),
    h=st.floats(0.75, 1.0),
    dt1=st.floats(0.1, 2.0),
    dt2=st.floats(0.1, 2.0),
)
def test_table_walk_composition(aging_table_module, duty, temp, h, dt1, dt2):
    """Walking the table twice equals one combined walk under constant
    conditions (the equivalent-age composition law), within
    interpolation tolerance."""
    table = aging_table_module
    h0 = np.array([h])
    stepped = table.next_health(
        temp, duty, table.next_health(temp, duty, h0, dt1), dt2
    )
    direct = table.next_health(temp, duty, h0, dt1 + dt2)
    assert abs(float(stepped[0] - direct[0])) < 5e-3


@pytest.fixture(scope="module")
def aging_table_module():
    from repro.aging import CoreAgingEstimator, build_aging_table

    return build_aging_table(
        CoreAgingEstimator(),
        temp_grid_k=np.arange(290.0, 431.0, 20.0),
        duty_grid=np.concatenate([[0.0], np.geomspace(0.05, 1.0, 8)]),
        age_grid_years=np.concatenate([[0.0], np.geomspace(0.1, 120.0, 16)]),
    )
