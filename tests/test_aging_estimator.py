"""Core-level aging estimation (Eq. 8) and Fig. 1(b) calibration."""

import pytest

from repro.aging import CoreAgingEstimator


@pytest.fixture(scope="module")
def estimator():
    return CoreAgingEstimator()


class TestRelativeFmax:
    def test_unaged_is_one(self, estimator):
        assert estimator.relative_fmax(358.0, 0.5, 0.0) == 1.0

    def test_health_decreases_with_age(self, estimator):
        h1 = estimator.relative_fmax(358.0, 0.5, 1.0)
        h5 = estimator.relative_fmax(358.0, 0.5, 5.0)
        h10 = estimator.relative_fmax(358.0, 0.5, 10.0)
        assert 1.0 > h1 > h5 > h10 > 0.0

    def test_health_decreases_with_temperature(self, estimator):
        cool = estimator.relative_fmax(330.0, 0.5, 10.0)
        hot = estimator.relative_fmax(400.0, 0.5, 10.0)
        assert cool > hot

    def test_health_decreases_with_duty(self, estimator):
        idle = estimator.relative_fmax(358.0, 0.1, 10.0)
        busy = estimator.relative_fmax(358.0, 0.9, 10.0)
        assert idle > busy

    def test_zero_duty_never_ages(self, estimator):
        assert estimator.relative_fmax(400.0, 0.0, 10.0) == pytest.approx(1.0)

    def test_consistency_with_delay_factor(self, estimator):
        h = estimator.relative_fmax(358.0, 0.5, 10.0)
        d = estimator.delay_increase_factor(358.0, 0.5, 10.0)
        assert h * d == pytest.approx(1.0)


class TestFig1bCalibration:
    """The model must reproduce the paper's Fig. 1(b) LEON3 curves:
    10-year delay growth ~1.05-1.1x at 25 C ranging to ~1.4x at 140 C."""

    @pytest.mark.parametrize(
        "temp_c,low,high",
        [
            (25.0, 1.03, 1.12),
            (75.0, 1.12, 1.22),
            (100.0, 1.20, 1.30),
            (140.0, 1.33, 1.48),
        ],
    )
    def test_delay_bands(self, estimator, temp_c, low, high):
        factor = estimator.delay_increase_factor(temp_c + 273.15, 1.0, 10.0)
        assert low < factor < high

    def test_time_critical_early_temperature_critical_late(self, estimator):
        """Fig. 1(b)'s split: early aging is dominated by time (steep
        y^(1/6) start), late aging by temperature (curves fan out)."""
        # Early: one year of aging at 75 C costs more than the extra
        # degradation from 25->75 C at year 1.
        spread_early = estimator.relative_fmax(298.0, 1.0, 1.0) - (
            estimator.relative_fmax(348.0, 1.0, 1.0)
        )
        spread_late = estimator.relative_fmax(298.0, 1.0, 10.0) - (
            estimator.relative_fmax(348.0, 1.0, 10.0)
        )
        assert spread_late > spread_early
