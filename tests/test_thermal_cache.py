"""The process-level thermal compute cache (PR 2 tentpole).

Three contracts are pinned here:

1. **O(1) factorizations** — a multi-epoch, multi-chip, multi-policy
   campaign performs a constant number of system/step factorizations
   (zero inside the jobs: ``run_campaign`` pre-warms), while the hit
   counter scales with the work.  This is the obs-counter regression
   guard against re-introducing per-job thermal builds.
2. **Bit-identity** — cached, uncached, serial, and parallel runs all
   produce byte-for-byte equal results; a hit returns the very arrays a
   miss computed.
3. **Lifecycle** — configure/clear/disable behave as documented, and
   the batched steady/coupled solvers agree with their scalar
   references exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.obs import MetricsRegistry, use_registry
from repro.power import PowerModel
from repro.sim import SimulationConfig, run_campaign
from repro.thermal import (
    ThermalRCNetwork,
    TransientIntegrator,
    clear_thermal_cache,
    configure_thermal_cache,
    get_thermal_cache,
    solve_coupled_steady_state,
    solve_coupled_steady_state_batch,
    warm_thermal_cache,
)
from repro.thermal.cache import floorplan_signature
from repro.variation import generate_population


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts from an empty, enabled cache and leaves it so."""
    configure_thermal_cache(enabled=True)
    clear_thermal_cache()
    yield
    configure_thermal_cache(enabled=True)
    clear_thermal_cache()


def _campaign_config():
    return SimulationConfig(
        lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=5.0, seed=3,
    )


class TestFactorizationsStayConstant:
    def test_multi_epoch_campaign_is_o1(self, aging_table):
        """2 chips x 2 policies x 2 epochs: zero factorizations inside
        the jobs, hit count scaling with the epoch count."""
        population = generate_population(2, seed=9)
        registry = MetricsRegistry()
        with use_registry(registry):
            run_campaign(
                [VAAManager(), HayatManager()],
                config=_campaign_config(),
                population=population,
                table=aging_table,
            )
        snapshot = registry.snapshot()
        assert snapshot.counter("thermal.factorizations") == 0
        # Every ChipContext build and every epoch's integrator hits.
        assert snapshot.counter("thermal.cache_hits") >= 8
        # Twice the epochs, same (zero) factorization count, more hits.
        config_long = SimulationConfig(
            lifetime_years=2.0, epoch_years=0.5, dark_fraction_min=0.5,
            window_s=5.0, seed=3,
        )
        registry_long = MetricsRegistry()
        with use_registry(registry_long):
            run_campaign(
                [VAAManager(), HayatManager()],
                config=config_long,
                population=population,
                table=aging_table,
            )
        long_snapshot = registry_long.snapshot()
        assert long_snapshot.counter("thermal.factorizations") == 0
        assert long_snapshot.counter("thermal.cache_hits") > snapshot.counter(
            "thermal.cache_hits"
        )

    def test_uncached_builds_factorize_every_time(self, floorplan):
        configure_thermal_cache(enabled=False)
        registry = MetricsRegistry()
        with use_registry(registry):
            ThermalRCNetwork(floorplan)
            ThermalRCNetwork(floorplan)
        assert registry.snapshot().counter("thermal.factorizations") == 2
        assert registry.snapshot().counter("thermal.cache_hits") == 0

    def test_warming_is_silent(self, floorplan):
        registry = MetricsRegistry()
        with use_registry(registry):
            warm_thermal_cache(floorplan, dt_s=0.5)
        snapshot = registry.snapshot()
        assert snapshot.counter("thermal.factorizations") == 0
        assert snapshot.counter("thermal.cache_hits") == 0
        # ...but the cache is genuinely warm: the next consumer hits.
        with use_registry(registry):
            ThermalRCNetwork(floorplan)
        assert registry.snapshot().counter("thermal.cache_hits") == 1


class TestBitIdentity:
    def test_cached_and_uncached_runs_match(self, floorplan, chip):
        pm = PowerModel.for_chip(chip)
        on = np.ones(64, dtype=bool)
        freq = np.full(64, 3.0)
        act = np.full(64, 0.6)

        def run_once():
            net = ThermalRCNetwork(floorplan)
            integ = TransientIntegrator(net, dt_s=0.5)
            temps, _ = solve_coupled_steady_state(net, pm, freq, act, on)
            power = pm.evaluate(freq, act, temps, on).total_w
            stepped = integ.step(net.initial_temperatures(), power)
            return temps, stepped, net.influence_matrix(), net.zero_power_baseline()

        cached = run_once()
        second = run_once()  # all hits
        configure_thermal_cache(enabled=False)
        uncached = run_once()
        for a, b, c in zip(cached, second, uncached):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_hits_share_the_same_arrays(self, floorplan):
        net_a = ThermalRCNetwork(floorplan)
        net_b = ThermalRCNetwork(floorplan)
        assert net_a.influence_matrix() is net_b.influence_matrix()
        assert not net_a.influence_matrix().flags.writeable

    def test_serial_and_parallel_campaigns_identical(self, aging_table):
        population = generate_population(2, seed=9)
        policies = [VAAManager(), HayatManager()]
        config = _campaign_config()
        serial_reg = MetricsRegistry()
        with use_registry(serial_reg):
            serial = run_campaign(
                policies, config=config, population=population,
                table=aging_table, workers=1,
            )
        parallel_reg = MetricsRegistry()
        with use_registry(parallel_reg):
            parallel = run_campaign(
                policies, config=config, population=population,
                table=aging_table, workers=2,
            )
        for name in serial.results:
            for left, right in zip(serial.results[name], parallel.results[name]):
                assert left.total_dtm_events() == right.total_dtm_events()
                for le, re in zip(left.epochs, right.epochs):
                    assert np.array_equal(le.health_after, re.health_after)
                    assert np.array_equal(le.worst_temps_k, re.worst_temps_k)
        # Segment-cache occupancy depends on process warmth (serial
        # reuses this process's cache, workers start cold), so hit/miss
        # splits may differ while everything physical stays identical.
        occupancy = {"sim.segment_cache_hits", "sim.segment_cache_misses"}

        def physical(reg):
            return {
                k: v
                for k, v in reg.snapshot().counters.items()
                if k not in occupancy
            }

        assert physical(serial_reg) == physical(parallel_reg)


class TestLifecycle:
    def test_distinct_keys_get_distinct_entries(self, floorplan, small_floorplan):
        ThermalRCNetwork(floorplan)
        ThermalRCNetwork(small_floorplan)
        assert get_thermal_cache().stats()["entries"] == 2
        assert floorplan_signature(floorplan) != floorplan_signature(
            small_floorplan
        )

    def test_clear_empties_entries(self, floorplan):
        ThermalRCNetwork(floorplan)
        assert get_thermal_cache().stats()["entries"] == 1
        clear_thermal_cache()
        assert get_thermal_cache().stats()["entries"] == 0

    def test_disable_clears_and_stops_storing(self, floorplan):
        ThermalRCNetwork(floorplan)
        configure_thermal_cache(enabled=False)
        cache = get_thermal_cache()
        assert cache.stats()["entries"] == 0
        ThermalRCNetwork(floorplan)
        assert cache.stats()["entries"] == 0

    def test_lru_bound_holds(self, floorplan, small_floorplan):
        configure_thermal_cache(max_entries=1)
        try:
            ThermalRCNetwork(floorplan)
            ThermalRCNetwork(small_floorplan)
            assert get_thermal_cache().stats()["entries"] == 1
        finally:
            configure_thermal_cache(max_entries=16)

    def test_step_factors_keyed_by_dt(self, floorplan):
        net = ThermalRCNetwork(floorplan)
        TransientIntegrator(net, dt_s=0.5)
        TransientIntegrator(net, dt_s=1.0)
        TransientIntegrator(net, dt_s=0.5)  # hit
        assert get_thermal_cache().stats()["step_factors"] == 2


class TestBatchedSolvers:
    def test_steady_state_batch_matches_rows(self, network):
        rng = np.random.default_rng(5)
        powers = rng.uniform(0.0, 4.0, (6, network.num_cores))
        batch = network.steady_state_batch(powers)
        for row, power in zip(batch, powers):
            assert np.array_equal(row, network.steady_state(power))

    def test_coupled_batch_matches_scalar(self, network, chip):
        pm = PowerModel.for_chip(chip)
        rng = np.random.default_rng(6)
        on = rng.random((4, 64)) < 0.6
        freq = np.full((4, 64), 3.0) * on
        act = rng.uniform(0.2, 0.9, (4, 64)) * on
        temps_batch, breakdown = solve_coupled_steady_state_batch(
            network, pm, freq, act, on
        )
        assert temps_batch.shape == (4, 64)
        for i in range(4):
            temps, _ = solve_coupled_steady_state(
                network, pm, freq[i], act[i], on[i]
            )
            np.testing.assert_allclose(temps_batch[i], temps, atol=1e-9)
        assert breakdown.total_w.shape == (4, 64)
