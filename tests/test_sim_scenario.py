"""Scenario documents: validation and execution."""

import json

import numpy as np
import pytest

from repro.sim import ScenarioError, load_scenario, run_scenario


def minimal_scenario(**overrides):
    scenario = {
        "name": "test",
        "population": {"num_chips": 1, "seed": 5},
        "config": {
            "lifetime_years": 0.5,
            "epoch_years": 0.5,
            "dark_fraction_min": 0.5,
            "window_s": 5.0,
            "seed": 3,
        },
        "policies": [{"type": "vaa"}, {"type": "hayat"}],
    }
    scenario.update(overrides)
    return scenario


class TestRunScenario:
    def test_runs_minimal(self, aging_table):
        campaign = run_scenario(minimal_scenario(), table=aging_table)
        assert campaign.policies() == ["vaa", "hayat"]
        assert len(campaign.results["hayat"]) == 1

    def test_policy_kwargs_forwarded(self, aging_table):
        scenario = minimal_scenario(
            policies=[{"type": "hayat", "comm_weight": 2.0}]
        )
        campaign = run_scenario(scenario, table=aging_table)
        assert campaign.policies() == ["hayat"]

    def test_config_defaults_when_omitted(self, aging_table):
        scenario = minimal_scenario()
        del scenario["config"]
        scenario["population"] = {"num_chips": 1, "seed": 5}
        # Default config is a full 10-year run; just validate it builds
        # the right object without running (use a policies error to
        # bail out early is fragile — instead run a tiny explicit one).
        scenario["config"] = {"lifetime_years": 0.5, "window_s": 5.0}
        campaign = run_scenario(scenario, table=aging_table)
        assert campaign.config.lifetime_years == 0.5


class TestValidation:
    def test_unknown_top_key(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            run_scenario(minimal_scenario(extra=1))

    def test_unknown_config_key(self):
        scenario = minimal_scenario()
        scenario["config"]["typo_knob"] = 1
        with pytest.raises(ScenarioError, match="typo_knob"):
            run_scenario(scenario)

    def test_unknown_policy_type(self):
        with pytest.raises(ScenarioError, match="unknown policy type"):
            run_scenario(minimal_scenario(policies=[{"type": "magic"}]))

    def test_bad_policy_kwargs(self):
        with pytest.raises(ScenarioError, match="bad arguments"):
            run_scenario(
                minimal_scenario(policies=[{"type": "hayat", "nope": 1}])
            )

    def test_missing_policies(self):
        scenario = minimal_scenario()
        del scenario["policies"]
        with pytest.raises(ScenarioError, match="policies"):
            run_scenario(scenario)

    def test_duplicate_policies(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            run_scenario(
                minimal_scenario(policies=[{"type": "vaa"}, {"type": "vaa"}])
            )

    def test_bad_population_key(self):
        with pytest.raises(ScenarioError, match="population"):
            run_scenario(minimal_scenario(population={"chips": 3}))


class TestLoadScenario:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(minimal_scenario()))
        loaded = load_scenario(str(path))
        assert loaded["name"] == "test"

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario(str(path))
