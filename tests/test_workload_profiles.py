"""Workload profile definitions."""

import pytest

from repro.workload import PARSEC_PROFILES, WorkloadProfile, profile


class TestProfiles:
    def test_paper_benchmarks_present(self):
        # Fig. 2's mix names bodytrack and x264 explicitly.
        assert "bodytrack" in PARSEC_PROFILES
        assert "x264" in PARSEC_PROFILES

    def test_profile_lookup(self):
        assert profile("x264").name == "x264"

    def test_unknown_profile_lists_known(self):
        with pytest.raises(KeyError, match="bodytrack"):
            profile("doom")

    def test_all_profiles_internally_consistent(self):
        for p in PARSEC_PROFILES.values():
            assert 0.0 <= p.mean_activity - p.activity_jitter
            assert p.mean_activity + p.activity_jitter <= 1.0
            assert p.min_threads <= p.max_threads
            assert p.fmin_ghz > 0

    def test_profiles_are_diverse(self):
        """The mix space must span distinct demand levels."""
        fmins = [p.fmin_ghz for p in PARSEC_PROFILES.values()]
        activities = [p.mean_activity for p in PARSEC_PROFILES.values()]
        assert max(fmins) - min(fmins) > 0.8
        assert max(activities) - min(activities) > 0.25

    def test_fmin_below_typical_chip_frequencies(self):
        """Requirements must be satisfiable by the variation model's
        frequency band (2.4-3.7 GHz), else no mapping exists."""
        for p in PARSEC_PROFILES.values():
            assert p.fmin_ghz + p.fmin_jitter_ghz < 3.2


class TestValidation:
    def _base(self, **overrides):
        kwargs = dict(
            name="t",
            mean_activity=0.5,
            activity_jitter=0.1,
            phase_length_s=1.0,
            duty_cycle=0.5,
            fmin_ghz=2.0,
            fmin_jitter_ghz=0.1,
            min_threads=1,
            max_threads=4,
            ipc=1.0,
        )
        kwargs.update(overrides)
        return WorkloadProfile(**kwargs)

    def test_valid_profile(self):
        self._base()

    def test_rejects_activity_band_overflow(self):
        with pytest.raises(ValueError):
            self._base(mean_activity=0.95, activity_jitter=0.1)

    def test_rejects_inverted_thread_bounds(self):
        with pytest.raises(ValueError):
            self._base(min_threads=5, max_threads=4)

    def test_rejects_negative_fmin_jitter(self):
        with pytest.raises(ValueError):
            self._base(fmin_jitter_ghz=-0.1)
