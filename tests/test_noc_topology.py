"""Mesh topology and XY routing."""

import numpy as np
import pytest

from repro.floorplan import Floorplan
from repro.noc import MeshTopology


@pytest.fixture(scope="module")
def mesh():
    return MeshTopology(Floorplan(4, 4))


class TestStructure:
    def test_link_count(self, mesh):
        # 4x4 mesh: 2 * (4*3 + 4*3) directed links.
        assert mesh.num_links == 48

    def test_links_are_neighbor_pairs(self, mesh):
        fp = mesh.floorplan
        for a, b in mesh.links:
            assert fp.manhattan_distance(a, b) == 1

    def test_hop_matrix_matches_manhattan(self, mesh):
        fp = mesh.floorplan
        for a in range(16):
            for b in range(16):
                assert mesh.hop_matrix[a, b] == fp.manhattan_distance(a, b)


class TestRouting:
    def test_route_length_is_hop_count(self, mesh):
        for src in range(16):
            for dst in range(16):
                assert len(mesh.route(src, dst)) == mesh.hop_count(src, dst)

    def test_self_route_empty(self, mesh):
        assert mesh.route(5, 5) == []

    def test_x_before_y(self, mesh):
        """XY routing corrects the column first."""
        fp = mesh.floorplan
        src = fp.index(0, 0)
        dst = fp.index(2, 2)
        links = [mesh.links[i] for i in mesh.route(src, dst)]
        first_leg = links[: 2]
        # The first two hops stay in row 0 (column correction).
        for a, b in first_leg:
            assert fp.position(a)[0] == 0 and fp.position(b)[0] == 0

    def test_route_is_connected(self, mesh):
        links = [mesh.links[i] for i in mesh.route(0, 15)]
        for (a, b), (c, d) in zip(links, links[1:]):
            assert b == c
        assert links[0][0] == 0 and links[-1][1] == 15


class TestLinkLoads:
    def test_single_flow(self, mesh):
        traffic = np.zeros((16, 16))
        traffic[0, 3] = 2.0  # 3 hops along row 0
        loads = mesh.link_loads(traffic)
        assert loads.sum() == pytest.approx(6.0)
        assert (loads > 0).sum() == 3

    def test_diagonal_ignored(self, mesh):
        traffic = np.eye(16)
        loads = mesh.link_loads(traffic)
        assert loads.sum() == 0.0

    def test_superposition(self, mesh):
        rng = np.random.default_rng(0)
        t1 = rng.uniform(0, 1, (16, 16))
        t2 = rng.uniform(0, 1, (16, 16))
        np.testing.assert_allclose(
            mesh.link_loads(t1 + t2),
            mesh.link_loads(t1) + mesh.link_loads(t2),
            rtol=1e-12,
        )

    def test_rejects_negative_traffic(self, mesh):
        traffic = np.zeros((16, 16))
        traffic[0, 1] = -1.0
        with pytest.raises(ValueError):
            mesh.link_loads(traffic)

    def test_rejects_wrong_shape(self, mesh):
        with pytest.raises(ValueError):
            mesh.link_loads(np.zeros((4, 4)))
