"""Chip construction: Eq. 1 frequencies and leakage scales."""

import numpy as np
import pytest

from repro.floorplan import Floorplan
from repro.variation import Chip, VariationParams
from repro.variation.chip import _grid_point_coordinates


@pytest.fixture(scope="module")
def small_chip():
    fp = Floorplan(2, 2)
    params = VariationParams(grid_per_core=2, critical_path_points=3)
    return Chip.sample(fp, params, np.random.default_rng(0))


class TestGridPoints:
    def test_count_and_containment(self):
        fp = Floorplan(2, 2)
        pts = _grid_point_coordinates(fp, 3)
        assert pts.shape == (4 * 9, 2)
        assert pts[:, 0].min() > 0 and pts[:, 0].max() < fp.die_width_mm
        assert pts[:, 1].min() > 0 and pts[:, 1].max() < fp.die_height_mm

    def test_core_slices_inside_tiles(self):
        fp = Floorplan(2, 2)
        pts = _grid_point_coordinates(fp, 2)
        w, h = fp.core.width_mm, fp.core.height_mm
        for core in range(4):
            block = pts[core * 4 : (core + 1) * 4]
            row, col = fp.position(core)
            assert (block[:, 0] > col * w).all() and (block[:, 0] < (col + 1) * w).all()
            assert (block[:, 1] > row * h).all() and (block[:, 1] < (row + 1) * h).all()


class TestChipConstruction:
    def test_fmax_positive_and_bounded(self, small_chip):
        f = small_chip.fmax_init_ghz
        assert f.shape == (4,)
        assert (f > 0).all()
        # theta >= mean - 4 sigma, so fmax is bounded above.
        params = small_chip.params
        upper = params.frequency_scale_ghz / (params.mean - 4 * params.sigma)
        assert (f <= upper + 1e-9).all()

    def test_eq1_min_over_critical_path(self, small_chip):
        """fmax is set by the slowest (max-theta) critical-path point."""
        cp = small_chip.theta_per_core[:, small_chip.critical_path_pattern]
        expected = small_chip.params.frequency_scale_ghz / cp.max(axis=1)
        np.testing.assert_allclose(small_chip.fmax_init_ghz, expected)

    def test_leakage_scale_bounds_respected(self, small_chip):
        low, high = small_chip.params.leakage_scale_bounds
        scale = small_chip.leakage_scale
        assert (scale >= low).all() and (scale <= high).all()

    def test_fast_cores_leak_more(self):
        """Across many cores, frequency and leakage correlate positively
        (both driven by low Vth) — the cherry-picking tension."""
        fp = Floorplan(8, 8)
        params = VariationParams()
        chip = Chip.sample(fp, params, np.random.default_rng(11))
        corr = np.corrcoef(chip.fmax_init_ghz, chip.leakage_scale)[0, 1]
        assert corr > 0.3

    def test_rejects_wrong_theta_shape(self):
        fp = Floorplan(2, 2)
        params = VariationParams(grid_per_core=2, critical_path_points=3)
        with pytest.raises(ValueError, match="shape"):
            Chip(fp, params, np.ones(7), np.array([0, 1, 2]))

    def test_rejects_nonpositive_theta(self):
        fp = Floorplan(2, 2)
        params = VariationParams(grid_per_core=2, critical_path_points=3)
        theta = np.ones(16)
        theta[3] = -0.5
        with pytest.raises(ValueError, match="positive"):
            Chip(fp, params, theta, np.array([0, 1, 2]))

    def test_rejects_bad_pattern(self):
        fp = Floorplan(2, 2)
        params = VariationParams(grid_per_core=2, critical_path_points=3)
        with pytest.raises(ValueError, match="pattern"):
            Chip(fp, params, np.ones(16), np.array([0, 9]))

    def test_sample_deterministic(self):
        fp = Floorplan(2, 2)
        params = VariationParams(grid_per_core=2, critical_path_points=3)
        a = Chip.sample(fp, params, np.random.default_rng(3))
        b = Chip.sample(fp, params, np.random.default_rng(3))
        np.testing.assert_array_equal(a.theta, b.theta)
        np.testing.assert_array_equal(a.fmax_init_ghz, b.fmax_init_ghz)


class TestVariationParams:
    def test_defaults_valid(self):
        VariationParams()

    def test_rejects_too_many_cp_points(self):
        with pytest.raises(ValueError):
            VariationParams(grid_per_core=2, critical_path_points=5)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            VariationParams(sigma=0.0)

    def test_rejects_bad_leakage_bounds(self):
        with pytest.raises(ValueError):
            VariationParams(leakage_scale_bounds=(2.0, 1.0))
