"""Documentation consistency guards.

Docs rot silently; these tests tie the written record to the code so a
renamed bench or deleted example breaks CI instead of the reader.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestExperimentsDoc:
    def test_every_referenced_bench_exists(self):
        text = read("EXPERIMENTS.md")
        for match in re.finditer(r"test_\w+\.py", text):
            assert (REPO / "benchmarks" / match.group(0)).exists(), match.group(0)

    def test_every_figure_bench_is_documented(self):
        text = read("EXPERIMENTS.md")
        for bench in (REPO / "benchmarks").glob("test_fig*.py"):
            assert bench.name in text, f"{bench.name} missing from EXPERIMENTS.md"

    def test_paper_match_is_confirmed(self):
        assert "matches the target paper" in read("DESIGN.md")


class TestReadme:
    def test_every_listed_example_exists(self):
        text = read("README.md")
        for match in re.finditer(r"examples/\w+\.py", text):
            assert (REPO / match.group(0)).exists(), match.group(0)

    def test_quickstart_code_runs_symbols(self):
        """The import statement shown in the README must resolve."""
        import repro

        for symbol in ("HayatManager", "VAAManager", "SimulationConfig", "run_campaign"):
            assert hasattr(repro, symbol)


class TestDesignDoc:
    def test_module_map_matches_packages(self):
        text = read("DESIGN.md")
        src = REPO / "src" / "repro"
        packages = {
            p.name for p in src.iterdir() if p.is_dir() and (p / "__init__.py").exists()
        }
        for package in packages:
            assert f"{package}/" in text, f"package {package} missing from DESIGN.md"


class TestExamples:
    def test_at_least_five_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5
        names = {e.name for e in examples}
        assert "quickstart.py" in names
