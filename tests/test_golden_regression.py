"""Golden regression values for a tiny deterministic simulation.

These pin the *current* end-to-end numerical behaviour so accidental
semantic changes (a reordered RNG draw, a sign slip in a model) surface
immediately.  An intentional model change is allowed to update them —
with a matching entry in EXPERIMENTS.md if it shifts the figures.

Tolerances are tight but not exact: BLAS reduction order may vary
across platforms.
"""

import numpy as np
import pytest

from repro import (
    ChipContext,
    HayatManager,
    LifetimeSimulator,
    SimulationConfig,
    VAAManager,
    generate_population,
)
from repro.aging import CoreAgingEstimator, build_aging_table

GOLDEN = {
    "hayat": {
        "events": 0,
        "mean_health": 0.9479968848,
        "avg_temp_k": 345.589822,
        "comm": 334.500646,
    },
    "vaa": {
        "events": 63,
        "mean_health": 0.8994866742,
        "avg_temp_k": 347.285619,
        "comm": 330.834097,
    },
}

CHIP_FMAX_HEAD = [3.02802007, 3.08507021, 2.71729127]


@pytest.fixture(scope="module")
def setup():
    population = generate_population(1, seed=123)
    table = build_aging_table(
        CoreAgingEstimator(),
        temp_grid_k=np.arange(290.0, 431.0, 20.0),
        duty_grid=np.concatenate([[0.0], np.geomspace(0.05, 1.0, 8)]),
        age_grid_years=np.concatenate([[0.0], np.geomspace(0.1, 120.0, 16)]),
    )
    return population[0], table


def test_golden_chip_manufacturing(setup):
    chip, _ = setup
    np.testing.assert_allclose(chip.fmax_init_ghz[:3], CHIP_FMAX_HEAD, rtol=1e-7)


@pytest.mark.parametrize("policy_name", ["hayat", "vaa"])
def test_golden_lifetime(setup, policy_name):
    chip, table = setup
    cfg = SimulationConfig(
        lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=10.0, seed=77,
    )
    policy = HayatManager() if policy_name == "hayat" else VAAManager()
    ctx = ChipContext(chip, table, dark_fraction_min=0.5)
    result = LifetimeSimulator(cfg).run(ctx, policy)

    golden = GOLDEN[policy_name]
    assert result.total_dtm_events() == golden["events"]
    assert float(result.epochs[-1].health_after.mean()) == pytest.approx(
        golden["mean_health"], rel=1e-6
    )
    assert float(result.epochs[0].avg_temp_k) == pytest.approx(
        golden["avg_temp_k"], rel=1e-6
    )
    assert result.mean_comm_cost() == pytest.approx(golden["comm"], rel=1e-6)
