"""JSON/CSV export of lifetime results."""

import csv

import numpy as np
import pytest

from repro.core import HayatManager
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig
from repro.sim.export import (
    CSV_FIELDS,
    load_results_json,
    result_from_dict,
    result_to_dict,
    save_results_json,
    save_summary_csv,
)


@pytest.fixture(scope="module")
def result(chip, aging_table):
    cfg = SimulationConfig(
        lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=5.0, seed=2,
    )
    ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
    return LifetimeSimulator(cfg).run(ctx, HayatManager())


class TestJsonRoundTrip:
    def test_dict_roundtrip_is_lossless(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.chip_id == result.chip_id
        assert restored.policy_name == result.policy_name
        np.testing.assert_array_equal(restored.fmax_init_ghz, result.fmax_init_ghz)
        assert len(restored.epochs) == len(result.epochs)
        np.testing.assert_array_equal(
            restored.health_trajectory(), result.health_trajectory()
        )
        assert restored.total_dtm_events() == result.total_dtm_events()

    def test_file_roundtrip(self, result, tmp_path):
        path = str(tmp_path / "results.json")
        save_results_json([result, result], path)
        loaded = load_results_json(path)
        assert len(loaded) == 2
        np.testing.assert_array_equal(
            loaded[0].health_trajectory(), result.health_trajectory()
        )

    def test_derived_metrics_survive(self, result, tmp_path):
        path = str(tmp_path / "r.json")
        save_results_json([result], path)
        loaded = load_results_json(path)[0]
        assert loaded.avg_fmax_aging_rate() == pytest.approx(
            result.avg_fmax_aging_rate()
        )
        assert loaded.lifetime_at_requirement_years(2.0) == pytest.approx(
            result.lifetime_at_requirement_years(2.0)
        )


class TestCsvSummary:
    def test_row_per_epoch(self, result, tmp_path):
        path = str(tmp_path / "summary.csv")
        save_summary_csv([result], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.epochs)
        assert set(rows[0]) == set(CSV_FIELDS)

    def test_values_match_result(self, result, tmp_path):
        path = str(tmp_path / "summary.csv")
        save_summary_csv([result], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        first = rows[0]
        assert first["chip_id"] == result.chip_id
        assert first["policy"] == "hayat"
        assert int(first["dtm_migrations"]) == result.epochs[0].dtm_migrations
        assert float(first["mean_health"]) == pytest.approx(
            float(result.epochs[0].health_after.mean()), abs=1e-6
        )
