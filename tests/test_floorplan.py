"""Floorplan geometry and adjacency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan import CoreGeometry, Floorplan, paper_floorplan


class TestCoreGeometry:
    def test_paper_dimensions(self):
        core = CoreGeometry()
        assert core.width_mm == pytest.approx(1.70)
        assert core.height_mm == pytest.approx(1.75)
        assert core.area_mm2 == pytest.approx(2.975)

    def test_area_m2(self):
        assert CoreGeometry(1.0, 1.0).area_m2 == pytest.approx(1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CoreGeometry(width_mm=0.0)


class TestFloorplanBasics:
    def test_paper_floorplan_is_8x8(self):
        fp = paper_floorplan()
        assert (fp.rows, fp.cols, fp.num_cores) == (8, 8, 64)

    def test_die_dimensions(self):
        fp = paper_floorplan()
        assert fp.die_width_mm == pytest.approx(8 * 1.70)
        assert fp.die_height_mm == pytest.approx(8 * 1.75)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Floorplan(0, 4)

    def test_index_position_roundtrip(self):
        fp = Floorplan(3, 5)
        for i in range(fp.num_cores):
            row, col = fp.position(i)
            assert fp.index(row, col) == i

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            Floorplan(2, 2).position(4)


class TestNeighbors:
    def test_corner_has_two(self):
        fp = Floorplan(4, 4)
        assert len(fp.neighbors(0)) == 2

    def test_edge_has_three(self):
        fp = Floorplan(4, 4)
        assert len(fp.neighbors(1)) == 3

    def test_interior_has_four(self):
        fp = Floorplan(4, 4)
        assert len(fp.neighbors(5)) == 4

    def test_neighbors_symmetric(self):
        fp = Floorplan(3, 4)
        for i in range(fp.num_cores):
            for j in fp.neighbors(i):
                assert i in fp.neighbors(j)

    def test_adjacency_matrix_matches_neighbors(self):
        fp = Floorplan(3, 3)
        adj = fp.adjacency_matrix
        assert adj.sum() == sum(len(fp.neighbors(i)) for i in range(9))
        np.testing.assert_array_equal(adj, adj.T)

    def test_edge_count(self):
        # A rows x cols mesh has rows*(cols-1) + cols*(rows-1) edges.
        fp = Floorplan(3, 4)
        assert len(list(fp.iter_edges())) == 3 * 3 + 4 * 2


class TestGeometry:
    def test_centers_shape_and_spacing(self):
        fp = paper_floorplan()
        centers = fp.centers_mm
        assert centers.shape == (64, 2)
        # Horizontal neighbors are exactly one core width apart.
        assert centers[1, 0] - centers[0, 0] == pytest.approx(1.70)
        assert centers[8, 1] - centers[0, 1] == pytest.approx(1.75)

    def test_distance_matrix_properties(self):
        fp = Floorplan(3, 3)
        dist = fp.distance_matrix_mm
        np.testing.assert_allclose(np.diag(dist), 0.0)
        np.testing.assert_allclose(dist, dist.T)
        assert (dist[~np.eye(9, dtype=bool)] > 0).all()

    def test_manhattan_distance(self):
        fp = Floorplan(4, 4)
        assert fp.manhattan_distance(0, 15) == 6
        assert fp.manhattan_distance(5, 5) == 0

    def test_is_edge_core(self):
        fp = Floorplan(4, 4)
        assert fp.is_edge_core(0)
        assert fp.is_edge_core(7)
        assert not fp.is_edge_core(5)

    def test_to_grid_roundtrip(self):
        fp = Floorplan(2, 3)
        values = np.arange(6, dtype=float)
        grid = fp.to_grid(values)
        assert grid.shape == (2, 3)
        assert grid[1, 2] == 5.0

    def test_to_grid_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Floorplan(2, 3).to_grid(np.zeros(5))


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(1, 6), cols=st.integers(1, 6))
def test_property_neighbor_counts(rows, cols):
    """Every core has 2-4 neighbors except degenerate 1-wide meshes."""
    fp = Floorplan(rows, cols)
    for i in range(fp.num_cores):
        neighbors = fp.neighbors(i)
        assert len(neighbors) <= 4
        assert len(set(neighbors)) == len(neighbors)
        assert all(fp.manhattan_distance(i, j) == 1 for j in neighbors)
