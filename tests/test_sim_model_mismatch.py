"""Robustness to aging-model miscalibration.

The manager's 3D tables come from offline SPICE calibration; real
silicon can age faster or slower than the vendor model.  These tests
inject a mismatched manager table (Eq. 7 prefactor off by +/- 25 %) and
check that the control loop keeps working and Hayat keeps beating VAA —
the technique must not depend on a perfect oracle.
"""

import numpy as np
import pytest

from repro.aging import CoreAgingEstimator, NBTIModel, build_aging_table
from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig


def scaled_table(prefactor_scale: float):
    nbti = NBTIModel(prefactor=3.4 * prefactor_scale)
    return build_aging_table(
        CoreAgingEstimator(nbti=nbti),
        temp_grid_k=np.arange(290.0, 431.0, 20.0),
        duty_grid=np.concatenate([[0.0], np.geomspace(0.05, 1.0, 8)]),
        age_grid_years=np.concatenate([[0.0], np.geomspace(0.1, 120.0, 16)]),
    )


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(
        lifetime_years=2.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=10.0, seed=13,
    )


class TestMismatch:
    @pytest.mark.parametrize("scale", [0.75, 1.25])
    def test_loop_survives_miscalibration(self, chip, aging_table, cfg, scale):
        ctx = ChipContext(
            chip,
            aging_table,
            dark_fraction_min=0.5,
            manager_table=scaled_table(scale),
        )
        result = LifetimeSimulator(cfg).run(ctx, HayatManager())
        assert len(result.epochs) == cfg.num_epochs
        # Ground-truth degradation is governed by the truth table, so
        # end-of-life health must match the well-calibrated run's order
        # of magnitude.
        assert 0.8 < result.epochs[-1].health_after.mean() < 1.0

    def test_truth_table_governs_degradation(self, chip, aging_table, cfg):
        """Identical truth table, different manager tables: the *rate*
        of real aging stays within a few percent — the manager's beliefs
        only steer placement, not physics."""
        healths = []
        for scale in (1.0, 1.25):
            ctx = ChipContext(
                chip,
                aging_table,
                dark_fraction_min=0.5,
                manager_table=scaled_table(scale),
            )
            result = LifetimeSimulator(cfg).run(ctx, HayatManager())
            healths.append(float(result.epochs[-1].health_after.mean()))
        assert abs(healths[0] - healths[1]) < 0.02

    def test_hayat_still_beats_vaa_under_mismatch(self, chip, aging_table, cfg):
        wrong = scaled_table(1.25)
        results = {}
        for policy in (HayatManager(), VAAManager()):
            ctx = ChipContext(
                chip, aging_table, dark_fraction_min=0.5, manager_table=wrong
            )
            results[policy.name] = LifetimeSimulator(cfg).run(ctx, policy)
        assert (
            results["hayat"].total_dtm_events()
            <= results["vaa"].total_dtm_events()
        )
        assert (
            results["hayat"].chip_fmax_aging_rate()
            <= results["vaa"].chip_fmax_aging_rate()
        )

    def test_default_is_no_mismatch(self, chip, aging_table):
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        assert ctx.table is ctx.truth_table
