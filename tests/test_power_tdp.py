"""TDP budgets and the dark-silicon arithmetic."""

import numpy as np
import pytest

from repro.power import TDPBudget, dark_silicon_projection


class TestMaxCoresOn:
    def test_uniform_power(self):
        budget = TDPBudget(100.0)
        power = np.full(64, 4.0)
        # 25 cores at 4 W = 100 W, but 39 gated cores add ~0.74 W.
        assert budget.max_cores_on(power) == 24

    def test_cheapest_first(self):
        budget = TDPBudget(10.0)
        power = np.array([9.0, 1.0, 1.0, 1.0])
        # Three 1 W cores + one gated beat one 9 W core.
        assert budget.max_cores_on(power, gated_power_w=0.0) == 3

    def test_zero_budget_impossible(self):
        with pytest.raises(ValueError):
            TDPBudget(0.0)

    def test_all_cores_fit_with_huge_budget(self):
        budget = TDPBudget(1e6)
        assert budget.max_cores_on(np.full(64, 5.0)) == 64

    def test_gated_leakage_counts(self):
        budget = TDPBudget(1.0)
        power = np.full(4, 0.5)
        # gated leakage 0.3 each: 0 on -> 1.2 W > budget; even "none on"
        # does not fit, so 0 cores.
        assert budget.max_cores_on(power, gated_power_w=0.3) == 0

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            TDPBudget(10.0).max_cores_on(np.array([0.0, 1.0]))


class TestDarkFraction:
    def test_paper_scale_example(self, chip):
        """With the paper's per-core power levels (~4-5 W at 3 GHz) and
        a mobile-class 125 W TDP, an 8x8 chip is forced to keep well
        over a third of its cores dark — the premise of the study."""
        from repro.power import DynamicPowerModel, LeakageModel

        dyn = DynamicPowerModel().power_w(3.0, 0.7)
        leak = LeakageModel().power_w(360.0, chip.leakage_scale)
        per_core = dyn + leak
        fraction = TDPBudget(125.0).dark_fraction_required(per_core)
        assert fraction > 0.35

    def test_headroom(self):
        budget = TDPBudget(100.0)
        assert budget.headroom_w(80.0) == pytest.approx(20.0)
        assert budget.headroom_w(120.0) == pytest.approx(-20.0)


class TestProjection:
    def test_cited_trend_reproduced(self):
        """[3]: ~13 % at 16 nm, ~16 % at 11 nm, > 40 % at 8 nm."""
        assert dark_silicon_projection(16.0) == pytest.approx(0.13)
        assert 0.14 < dark_silicon_projection(11.0) < 0.22
        assert dark_silicon_projection(8.0) > 0.20

    def test_monotone_in_scaling(self):
        nodes = [22.0, 16.0, 11.0, 8.0, 5.0]
        fractions = [dark_silicon_projection(n) for n in nodes]
        assert all(b > a for a, b in zip(fractions, fractions[1:]))

    def test_capped(self):
        assert dark_silicon_projection(1.0) <= 0.95

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            dark_silicon_projection(0.0)
        with pytest.raises(ValueError):
            dark_silicon_projection(16.0, scaling_per_node=0.9)
