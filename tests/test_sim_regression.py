"""Result-set drift comparison."""

import numpy as np
import pytest

from repro.core import HayatManager
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig, compare_results
from repro.sim.export import load_results_json, save_results_json


@pytest.fixture(scope="module")
def result(chip, aging_table):
    cfg = SimulationConfig(
        lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=5.0, seed=14,
    )
    ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
    return LifetimeSimulator(cfg).run(ctx, HayatManager())


class TestCompareResults:
    def test_identical_runs_no_drift(self, result, tmp_path):
        path = str(tmp_path / "base.json")
        save_results_json([result], path)
        baseline = load_results_json(path)
        assert compare_results(baseline, [result]) == []

    def test_detects_health_drift(self, result, tmp_path):
        path = str(tmp_path / "base.json")
        save_results_json([result], path)
        mutated = load_results_json(path)
        mutated[0].epochs[-1].health_after[:] *= 0.99
        drifts = compare_results([result], mutated)
        metrics = {d.metric for d in drifts}
        assert "mean_final_health" in metrics

    def test_tolerance_suppresses_small_drift(self, result, tmp_path):
        path = str(tmp_path / "base.json")
        save_results_json([result], path)
        mutated = load_results_json(path)
        mutated[0].epochs[-1].health_after[:] *= 1.0 - 1e-6
        drifts = compare_results(
            [result], mutated, tolerances={"mean_final_health": 1e-3}
        )
        assert all(d.metric != "mean_final_health" for d in drifts)

    def test_mismatched_sets_rejected(self, result):
        with pytest.raises(ValueError, match="pair up"):
            compare_results([result], [])

    def test_unknown_tolerance_rejected(self, result):
        with pytest.raises(ValueError, match="unknown metrics"):
            compare_results([result], [result], tolerances={"nope": 0.1})

    def test_drift_description(self, result, tmp_path):
        path = str(tmp_path / "base.json")
        save_results_json([result], path)
        mutated = load_results_json(path)
        mutated[0].epochs[-1].health_after[:] *= 0.9
        drift = [
            d for d in compare_results([result], mutated)
            if d.metric == "mean_final_health"
        ][0]
        text = drift.describe()
        assert "hayat" in text and "mean_final_health" in text
        assert drift.relative_change < 0
