"""Matrix-exponential integrator vs backward Euler."""

import numpy as np
import pytest

from repro.floorplan import Floorplan
from repro.thermal import ExactIntegrator, ThermalRCNetwork, TransientIntegrator


@pytest.fixture(scope="module")
def net():
    return ThermalRCNetwork(Floorplan(4, 4))


class TestExactIntegrator:
    def test_converges_to_steady_state(self, net):
        power = np.full(16, 3.0)
        integ = ExactIntegrator(net, dt_s=10.0)
        temps = integ.run(net.initial_temperatures(), power, num_steps=100)
        np.testing.assert_allclose(
            integ.core_temperatures(temps), net.steady_state(power), atol=1e-6
        )

    def test_step_composition(self, net):
        """Two dt steps equal one 2dt step exactly (group property)."""
        power = np.full(16, 2.0)
        short = ExactIntegrator(net, dt_s=1.0)
        long = ExactIntegrator(net, dt_s=2.0)
        start = net.initial_temperatures()
        two_short = short.step(short.step(start, power), power)
        one_long = long.step(start, power)
        np.testing.assert_allclose(two_short, one_long, rtol=1e-9)

    def test_backward_euler_agrees_at_small_steps(self, net):
        """BE converges to the exact solution as dt -> 0; at dt = tau/10
        the error after a fixed horizon must be small."""
        power = np.full(16, 4.0)
        horizon_s = 2.0
        exact = ExactIntegrator(net, dt_s=horizon_s)
        truth = exact.step(net.initial_temperatures(), power)

        dt = 0.002
        euler = TransientIntegrator(net, dt_s=dt)
        approx = euler.run(
            net.initial_temperatures(), power, num_steps=int(horizon_s / dt)
        )
        err = np.abs(
            euler.core_temperatures(approx) - exact.core_temperatures(truth)
        ).max()
        assert err < 0.1

    def test_backward_euler_error_shrinks_with_dt(self, net):
        power = np.full(16, 4.0)
        horizon_s = 1.0
        truth = ExactIntegrator(net, dt_s=horizon_s).step(
            net.initial_temperatures(), power
        )[:16]

        errors = []
        for dt in (0.05, 0.01):
            euler = TransientIntegrator(net, dt_s=dt)
            approx = euler.run(
                net.initial_temperatures(), power, num_steps=int(horizon_s / dt)
            )
            errors.append(np.abs(approx[:16] - truth).max())
        assert errors[1] < errors[0]

    def test_exact_decay_rate(self, net):
        """With zero power the rise decays; after one sink time constant
        the sink node's rise shrinks by ~e."""
        power = np.full(16, 3.0)
        hot = net.steady_state_all_nodes(power)
        sink_tau = (
            net.config.sink_heat_capacity_j_per_k * net.config.sink_to_ambient_r_kw
        )
        integ = ExactIntegrator(net, dt_s=sink_tau)
        cooled = integ.step(hot, np.zeros(16))
        amb = net.config.ambient_k
        ratio = (cooled[-1] - amb) / (hot[-1] - amb)
        # Multi-exponential decay: between 1/e (single pole) and ~0.6.
        assert 0.2 < ratio < 0.65

    def test_rejects_wrong_shape(self, net):
        integ = ExactIntegrator(net, dt_s=1.0)
        with pytest.raises(ValueError):
            integ.step(np.zeros(5), np.zeros(16))
