"""Cross-lane batched Algorithm 1: bit-identity with the sequential path.

Every test pins the tentpole contract of
:mod:`repro.core.mapper_batch`: the lockstep engine is purely an
execution strategy.  Whatever mix of thread counts, infeasibility,
thermal overshoot, communication weighting, pre-placed threads, or
demoted lanes a batch carries, each lane's placements, frequencies, and
unmapped list must equal its solo ``map_threads`` call bit for bit.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import HayatManager, HayatMapper, MappingError, OnlineHealthEstimator
from repro.core.dcm import temperature_optimized_dcm
from repro.core.mapper_batch import MapperLane, map_threads_batch, unstackable_reason
from repro.mapping import ChipState
from repro.noc import MeshTopology
from repro.obs import MetricsRegistry, use_registry
from repro.power import PowerModel
from repro.sim import ChipContext, SimulationConfig, run_campaign
from repro.sim.export import result_to_dict
from repro.thermal import ThermalPredictor, ThermalRCNetwork
from repro.variation import generate_population
from repro.workload import make_mix

APPS = [["bodytrack", "x264"], ["dedup", "ferret"], ["bodytrack", "ferret"]]
COUNTS = [12, 16, 20]


@pytest.fixture(scope="module")
def rig(population, floorplan, aging_table):
    """Per-chip estimators over the shared 64-core floorplan."""
    net = ThermalRCNetwork(floorplan)
    estimators = [
        OnlineHealthEstimator(
            ThermalPredictor.learn(net, PowerModel.for_chip(chip)), aging_table
        )
        for chip in population
    ]
    return net.influence_matrix(), estimators


def build_state(chip, floorplan, influence, apps, num_threads, seed):
    """A fresh mapping problem; same arguments -> bit-identical clone."""
    mix = make_mix(apps, num_threads, np.random.default_rng(seed))
    dcm = temperature_optimized_dcm(floorplan, num_threads, influence)
    return ChipState(chip.num_cores, mix.threads, dcm)


def assert_states_identical(got: ChipState, want: ChipState) -> None:
    np.testing.assert_array_equal(got.assignment, want.assignment)
    np.testing.assert_array_equal(got.freq_ghz, want.freq_ghz)
    np.testing.assert_array_equal(got.powered_on, want.powered_on)


def run_both_ways(lanes, twins, epoch_years=0.5):
    """Map ``lanes`` through the batch engine and ``twins`` solo, then
    require lane-for-lane bit identity (states and unmapped lists)."""
    unmapped = map_threads_batch(lanes, epoch_years)
    for lane, twin, got_unmapped in zip(lanes, twins, unmapped):
        want_unmapped = twin.mapper.map_threads(
            twin.state,
            twin.fmax_now_ghz,
            twin.health_now,
            epoch_years,
            twin.elapsed_years,
            initial_temps_k=twin.initial_temps_k,
        )
        assert got_unmapped == want_unmapped
        assert_states_identical(lane.state, twin.state)
    return unmapped


class TestLockstepBitIdentity:
    def _paired_lanes(self, rig, population, floorplan, seed, **mapper_kwargs):
        """Build (lanes, twins): same chips, same problems, two state
        clones each, with per-lane health / warm-start / age diversity."""
        influence, estimators = rig
        rng = np.random.default_rng(seed)
        lanes, twins = [], []
        for i, (chip, est, apps, count) in enumerate(
            zip(population, estimators, APPS, COUNTS)
        ):
            health = rng.uniform(0.9, 1.0, chip.num_cores)
            fmax = chip.fmax_init_ghz * health
            temps = (
                rng.uniform(320.0, 350.0, chip.num_cores) if i % 2 else None
            )
            pair = []
            for _ in range(2):
                pair.append(
                    MapperLane(
                        mapper=HayatMapper(est, **mapper_kwargs),
                        state=build_state(
                            chip, floorplan, influence, apps, count, seed
                        ),
                        fmax_now_ghz=fmax,
                        health_now=health,
                        elapsed_years=0.7 * i,
                        initial_temps_k=temps,
                    )
                )
            lanes.append(pair[0])
            twins.append(pair[1])
        return lanes, twins

    def test_matches_sequential_across_seeds(self, rig, population, floorplan):
        """Mixed thread counts, health maps, and warm starts over
        several seeds: every lane rides the stack and matches solo."""
        for seed in range(3):
            lanes, twins = self._paired_lanes(rig, population, floorplan, seed)
            registry = MetricsRegistry()
            with use_registry(registry):
                unmapped = run_both_ways(lanes, twins)
            assert registry.counter("sim.decision_batched_lanes") == len(lanes)
            assert all(um == [] for um in unmapped)

    def test_infeasible_threads_same_unmapped(self, rig, population, floorplan):
        """A lane whose chip can satisfy nothing reports the exact same
        unmapped list as its solo call, without disturbing siblings."""
        lanes, twins = self._paired_lanes(rig, population, floorplan, seed=5)
        slow = np.full(population[0].num_cores, 0.5)
        lanes[0].fmax_now_ghz = slow
        twins[0].fmax_now_ghz = slow
        unmapped = run_both_ways(lanes, twins)
        assert len(unmapped[0]) == COUNTS[0]  # nothing feasible there
        assert unmapped[1] == [] and unmapped[2] == []

    def test_all_overshoot_fallback(self, rig, population, floorplan):
        """An impossible thermal constraint forces every placement down
        the least-bad fallback; batch and solo still agree bit for bit."""
        lanes, twins = self._paired_lanes(
            rig, population, floorplan, seed=2, tsafe_k=1.0
        )
        run_both_ways(lanes, twins)

    def test_comm_weight_identical(self, rig, population, floorplan):
        """The incremental sibling map scores the same penalties as the
        solo path's rebuilt one."""
        mesh = MeshTopology(floorplan)
        lanes, twins = self._paired_lanes(
            rig,
            population,
            floorplan,
            seed=3,
            comm_weight=6.0,
            hop_matrix=mesh.hop_matrix,
        )
        run_both_ways(lanes, twins)

    def test_preplaced_threads_identical(self, rig, population, floorplan):
        """Incremental/mid-epoch use: threads already on cores are
        skipped and their running-vector contributions carried equally."""
        lanes, twins = self._paired_lanes(rig, population, floorplan, seed=4)
        for holder in (lanes, twins):
            for lane in holder:
                on = np.flatnonzero(lane.state.powered_on)[:3]
                for thread_index, core in enumerate(on):
                    thread = lane.state.threads[thread_index]
                    lane.state.place(thread_index, int(core), thread.fmin_ghz)
        run_both_ways(lanes, twins)

    def test_strict_lane_demoted(self, rig, population, floorplan):
        """A strict lane never joins the stack (a mid-round raise would
        strand siblings) but maps identically on the sequential path."""
        lanes, twins = self._paired_lanes(rig, population, floorplan, seed=6)
        strict = HayatMapper(lanes[1].mapper.estimator, strict=True)
        lanes[1].mapper = strict
        twins[1].mapper = HayatMapper(twins[1].mapper.estimator, strict=True)
        assert unstackable_reason(lanes[1], lanes[0]) == "strict mapper"
        registry = MetricsRegistry()
        with use_registry(registry):
            run_both_ways(lanes, twins)
        assert registry.counter("sim.decision_batched_lanes") == 2

    def test_strict_infeasible_still_raises(self, rig, population, floorplan):
        lanes, _ = self._paired_lanes(rig, population, floorplan, seed=6)
        lanes[1].mapper = HayatMapper(lanes[1].mapper.estimator, strict=True)
        lanes[1].fmax_now_ghz = np.full(population[1].num_cores, 0.5)
        with pytest.raises(MappingError):
            map_threads_batch(lanes, 0.5)

    def test_mixed_core_counts_demoted(
        self, rig, population, floorplan, small_floorplan, aging_table
    ):
        """A lane on different silicon geometry cannot share the stack;
        it runs sequentially and still matches its solo call."""
        lanes, twins = self._paired_lanes(rig, population, floorplan, seed=8)
        small_chip = generate_population(
            1, seed=3, floorplan=small_floorplan
        )[0]
        small_net = ThermalRCNetwork(small_floorplan)
        small_est = OnlineHealthEstimator(
            ThermalPredictor.learn(small_net, PowerModel.for_chip(small_chip)),
            aging_table,
        )
        small_influence = small_net.influence_matrix()
        for holder in (lanes, twins):
            holder.append(
                MapperLane(
                    mapper=HayatMapper(small_est),
                    state=build_state(
                        small_chip,
                        small_floorplan,
                        small_influence,
                        ["dedup"],
                        6,
                        seed=8,
                    ),
                    fmax_now_ghz=small_chip.fmax_init_ghz,
                    health_now=np.ones(small_chip.num_cores),
                    elapsed_years=0.0,
                )
            )
        assert unstackable_reason(lanes[-1], lanes[0]) == "mixed core counts"
        registry = MetricsRegistry()
        with use_registry(registry):
            run_both_ways(lanes, twins)
        assert registry.counter("sim.decision_batched_lanes") == 3


class TestManagerBatch:
    def test_prepare_epoch_batch_matches_per_lane(self, population, aging_table):
        """The full manager path — DCM, fencing, batched mapping,
        unmapped absorption — equals per-lane ``prepare_epoch``."""
        policy = HayatManager()
        mixes = [
            make_mix(apps, count, np.random.default_rng(90 + i))
            for i, (apps, count) in enumerate(zip(APPS, COUNTS))
        ]
        make_ctxs = lambda: [
            ChipContext(chip, aging_table, dark_fraction_min=0.5)
            for chip in population
        ]
        batch_states = policy.prepare_epoch_batch(make_ctxs(), mixes, 0.5)
        solo_states = [
            policy.prepare_epoch(ctx, mix, 0.5)
            for ctx, mix in zip(make_ctxs(), mixes)
        ]
        for got, want in zip(batch_states, solo_states):
            assert_states_identical(got, want)


def small_cfg(**overrides) -> SimulationConfig:
    base = dict(
        lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
        window_s=5.0, seed=7,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestEscapeHatches:
    """Campaign-level identity of the two new fast paths and their
    ``--no-batch-decision`` / ``--no-segment-cache`` escape hatches."""

    @pytest.fixture(scope="class")
    def reference(self, population, aging_table):
        return run_campaign(
            [HayatManager()],
            config=small_cfg(), population=population, table=aging_table,
        )

    def test_batch_decision_off_identical(
        self, reference, population, aging_table
    ):
        cfg = small_cfg()
        on_registry = MetricsRegistry()
        with use_registry(on_registry):
            batched = run_campaign(
                [HayatManager()],
                config=cfg, population=population, table=aging_table,
                batch_size=len(population),
            )
        off_registry = MetricsRegistry()
        with use_registry(off_registry):
            unbatched = run_campaign(
                [HayatManager()],
                config=dataclasses.replace(cfg, batch_decision=False),
                population=population, table=aging_table,
                batch_size=len(population),
            )
        for a, b, c in zip(
            reference.results["hayat"],
            batched.results["hayat"],
            unbatched.results["hayat"],
        ):
            assert result_to_dict(a) == result_to_dict(b)
            assert result_to_dict(a) == result_to_dict(c)
        assert on_registry.counter("sim.decision_batched_lanes") > 0
        assert off_registry.counter("sim.decision_batched_lanes") == 0

    def test_segment_cache_off_identical(
        self, reference, population, aging_table
    ):
        registry = MetricsRegistry()
        with use_registry(registry):
            uncached = run_campaign(
                [HayatManager()],
                config=small_cfg(segment_cache=False),
                population=population, table=aging_table,
            )
        for a, b in zip(
            reference.results["hayat"], uncached.results["hayat"]
        ):
            assert result_to_dict(a) == result_to_dict(b)
        assert registry.counter("sim.segment_cache_hits") == 0
        assert registry.counter("sim.segment_cache_misses") == 0

    def test_repeat_run_hits_segment_cache(
        self, reference, population, aging_table
    ):
        """``reference`` already populated the process-level cache with
        this campaign's segments; an identical run is all hits."""
        registry = MetricsRegistry()
        with use_registry(registry):
            run_campaign(
                [HayatManager()],
                config=small_cfg(), population=population, table=aging_table,
            )
        assert registry.counter("sim.segment_cache_hits") > 0
