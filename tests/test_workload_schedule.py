"""Mid-epoch arrival schedules."""

import numpy as np
import pytest

from repro.workload import ArrivalEvent, ArrivalSchedule, poisson_arrivals
from repro.workload.application import Application
from repro.workload.profiles import profile


def make_event(time_s, threads=2, seed=0):
    app = Application.spawn(
        profile("blackscholes"), threads, np.random.default_rng(seed)
    )
    return ArrivalEvent(time_s=time_s, application=app)


class TestSchedule:
    def test_events_sorted_by_time(self):
        schedule = ArrivalSchedule([make_event(5.0), make_event(1.0)])
        assert [e.time_s for e in schedule] == [1.0, 5.0]

    def test_due_half_open_interval(self):
        schedule = ArrivalSchedule([make_event(1.0), make_event(2.0), make_event(3.0)])
        due = schedule.due(1.0, 3.0)
        assert [e.time_s for e in due] == [1.0, 2.0]

    def test_total_threads(self):
        schedule = ArrivalSchedule([make_event(1.0, threads=2), make_event(2.0, threads=3)])
        assert schedule.total_threads == 5

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            make_event(-1.0)


class TestPoissonArrivals:
    def test_deterministic(self):
        a = poisson_arrivals(100.0, 10.0, np.random.default_rng(3))
        b = poisson_arrivals(100.0, 10.0, np.random.default_rng(3))
        assert [e.time_s for e in a] == [e.time_s for e in b]

    def test_all_within_window(self):
        schedule = poisson_arrivals(50.0, 5.0, np.random.default_rng(1))
        assert all(0 <= e.time_s < 50.0 for e in schedule)

    def test_rate_statistics(self):
        counts = [
            len(poisson_arrivals(1000.0, 10.0, np.random.default_rng(s)))
            for s in range(20)
        ]
        assert 80 < np.mean(counts) < 120  # ~100 expected

    def test_thread_counts_within_bounds(self):
        schedule = poisson_arrivals(
            200.0, 10.0, np.random.default_rng(2), threads_per_app=(1, 3)
        )
        for event in schedule:
            prof = event.application.profile
            assert (
                prof.min_threads
                <= event.application.num_threads
                <= prof.max_threads
            )

    def test_restricted_profile_pool(self):
        schedule = poisson_arrivals(
            200.0, 10.0, np.random.default_rng(4), profile_names=["swaptions"]
        )
        assert all(e.application.profile.name == "swaptions" for e in schedule)

    def test_rejects_bad_thread_range(self):
        with pytest.raises(ValueError):
            poisson_arrivals(
                10.0, 1.0, np.random.default_rng(0), threads_per_app=(3, 2)
            )
