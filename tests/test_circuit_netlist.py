"""Netlist structure and validation."""

import pytest

from repro.circuit import Gate, Netlist, default_library


@pytest.fixture()
def lib():
    return default_library()


def small_netlist(lib):
    # nets 0,1,2 are primary inputs; 3,4,5 driven.
    return Netlist(
        lib,
        [
            Gate("NAND2_X1", (0, 1), 3),
            Gate("INV_X1", (2,), 4),
            Gate("NOR2_X1", (3, 4), 5),
        ],
    )


class TestStructure:
    def test_primary_inputs(self, lib):
        net = small_netlist(lib)
        assert net.primary_inputs() == [0, 1, 2]

    def test_primary_outputs(self, lib):
        net = small_netlist(lib)
        assert net.primary_outputs() == [5]

    def test_len(self, lib):
        assert len(small_netlist(lib)) == 3

    def test_validate_passes(self, lib):
        small_netlist(lib).validate()


class TestValidation:
    def test_arity_mismatch(self, lib):
        net = Netlist(lib, [Gate("NAND2_X1", (0,), 1)])
        with pytest.raises(ValueError, match="expects 2"):
            net.validate()

    def test_double_driver(self, lib):
        net = Netlist(
            lib,
            [Gate("INV_X1", (0,), 2), Gate("INV_X1", (1,), 2)],
        )
        with pytest.raises(ValueError, match="driven twice"):
            net.validate()

    def test_gate_self_loop_rejected_at_construction(self):
        with pytest.raises(ValueError, match="feedback"):
            Gate("INV_X1", (3,), 3)

    def test_gate_requires_inputs(self):
        with pytest.raises(ValueError):
            Gate("INV_X1", (), 1)
