"""Mid-epoch arrivals inside the lifetime simulator."""

import numpy as np
import pytest

from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig
from repro.workload import poisson_arrivals


@pytest.fixture(scope="module")
def arrival_cfg():
    # load_factor < 1 leaves idle powered-on cores for arrivals.
    return SimulationConfig(
        lifetime_years=0.5,
        epoch_years=0.5,
        dark_fraction_min=0.5,
        window_s=20.0,
        load_factor=0.6,
        seed=5,
    )


def arrivals_factory(epoch, window_s, rng):
    return poisson_arrivals(
        window_s, mean_interarrival_s=5.0, rng=rng, threads_per_app=(1, 2)
    )


class TestArrivals:
    def test_arrivals_recorded(self, chip, aging_table, arrival_cfg):
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        sim = LifetimeSimulator(arrival_cfg, arrivals_factory=arrivals_factory)
        result = sim.run(ctx, HayatManager())
        assert result.epochs[0].arrivals > 0

    def test_arrived_threads_get_cores(self, chip, aging_table, arrival_cfg):
        """With idle capacity available, arrivals end up mapped (either
        by the policy's incremental path or the first-fit fallback)."""
        for policy in (HayatManager(), VAAManager()):
            ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
            sim = LifetimeSimulator(arrival_cfg, arrivals_factory=arrivals_factory)
            result = sim.run(ctx, policy)
            epoch = result.epochs[0]
            # Unserved threads surface as QoS violations; with 40 % of
            # the budget idle most arrivals must be served.
            assert epoch.qos_violations < epoch.arrivals

    def test_no_schedule_means_no_arrivals(self, chip, aging_table, arrival_cfg):
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        result = LifetimeSimulator(arrival_cfg).run(ctx, HayatManager())
        assert all(e.arrivals == 0 for e in result.epochs)

    def test_deterministic_with_arrivals(self, chip, aging_table, arrival_cfg):
        healths = []
        for _ in range(2):
            ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
            sim = LifetimeSimulator(arrival_cfg, arrivals_factory=arrivals_factory)
            result = sim.run(ctx, HayatManager())
            healths.append(result.health_trajectory())
        np.testing.assert_array_equal(healths[0], healths[1])

    def test_hayat_incremental_path_used(self, chip, aging_table, arrival_cfg):
        """HayatManager exposes place_arrival; verify it actually places
        threads on frequency-feasible cores."""
        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        sim = LifetimeSimulator(arrival_cfg, arrivals_factory=arrivals_factory)
        result = sim.run(ctx, HayatManager())
        assert result.epochs[0].arrivals > 0
        # No structural damage across the run (validate ran each epoch in
        # the simulator; health stayed monotone).
        traj = result.health_trajectory()
        assert (np.diff(traj, axis=0) <= 1e-12).all() if len(traj) > 1 else True
