"""Library-wide quality gates: docstrings and API hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.aging",
    "repro.analysis",
    "repro.baselines",
    "repro.circuit",
    "repro.core",
    "repro.dtm",
    "repro.floorplan",
    "repro.mapping",
    "repro.noc",
    "repro.power",
    "repro.sim",
    "repro.thermal",
    "repro.util",
    "repro.variation",
    "repro.workload",
]


def all_modules():
    modules = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name.startswith("_"):  # __main__ runs the CLI
                    continue
                if info.ispkg:
                    continue  # subpackages are listed in PACKAGES
                modules.append(
                    importlib.import_module(f"{package_name}.{info.name}")
                )
    return modules


@pytest.mark.parametrize("module", all_modules(), ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", all_modules(), ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    """Every public function/class defined in the library has a
    docstring, and every public method of every public class too."""
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", "").split(".")[0] != "repro":
            continue
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    missing.append(
                        f"{module.__name__}.{name}.{method_name}"
                    )
    assert not missing, f"undocumented public API: {missing}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_package_exports_match_all():
    """Every subpackage's __all__ resolves and is sorted."""
    for package_name in PACKAGES[1:]:
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name}"
