"""Fleet service: result store, running aggregates, daemon lifecycle.

The subprocess tests (SIGKILL mid-run) spawn the CLI daemon against a
tmp fleet directory; everything else drives the daemon in-process with
``drain=True`` so no test ever polls an empty spool.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.sim import SimulationConfig, run_campaign
from repro.sim.fleet import (
    FleetDaemon,
    FleetRequest,
    ResultStore,
    aggregate_campaign,
    aggregate_store,
    fleet_status,
    result_blocks,
    result_scalars,
    submit_request,
)
from repro.sim.fleet.aggregates import Histogram, RunningStat
from repro.baselines import VAAManager
from repro.core import HayatManager
from repro.variation import generate_population
from tests.test_sim_supervisor import tiny_config


def fleet_request(**overrides) -> dict:
    """The canonical tiny fleet request the daemon tests share."""
    request = {
        "policies": ["vaa", "hayat"],
        "chips": 2,
        "dark_fractions": [0.5],
        "years": 0.5,
        "config": {"epoch_years": 0.5, "window_s": 3.0},
        "seed": 3,
        "baseline": "vaa",
    }
    request.update(overrides)
    return request


@pytest.fixture(scope="module")
def lifetime_results(aging_table):
    campaign = run_campaign(
        [VAAManager(), HayatManager()],
        config=tiny_config(),
        population=generate_population(2, seed=29),
        table=aging_table,
    )
    return campaign


class TestResultStore:
    def test_append_then_reopen_round_trips(self, lifetime_results, tmp_path):
        result = lifetime_results.results["hayat"][0]
        with ResultStore(str(tmp_path / "store")) as store:
            record = store.append("job-a", result, requirement_ghz=1.0)
        with ResultStore(str(tmp_path / "store")) as reopened:
            assert len(reopened) == 1 and "job-a" in reopened
            back = reopened.record("job-a")
            assert back == json.loads(json.dumps(record))
            expected = json.loads(
                json.dumps(result_scalars(result, requirement_ghz=1.0))
            )
            assert back["scalars"] == expected
            for name, block in result_blocks(result).items():
                np.testing.assert_array_equal(
                    reopened.block(back, name), block
                )

    def test_missing_key_is_none(self, tmp_path):
        with ResultStore(str(tmp_path / "store")) as store:
            assert store.record("nope") is None
            assert "nope" not in store

    def test_torn_tail_is_silent_midfile_corruption_is_not(
        self, lifetime_results, tmp_path
    ):
        result = lifetime_results.results["hayat"][0]
        directory = str(tmp_path / "store")
        with ResultStore(directory) as store:
            store.append("a", result, requirement_ghz=1.0)
            store.append("b", result, requirement_ghz=1.0)
        scalars = os.path.join(directory, "scalars.jsonl")
        lines = open(scalars, "rb").read().splitlines(keepends=True)
        # Torn final line: silent (dirty shutdown).
        with open(scalars, "wb") as handle:
            handle.write(lines[0] + lines[1][: len(lines[1]) // 2])
        with ResultStore(directory) as store:
            assert len(store) == 1 and store.truncated_tail
            assert store.skipped_lines == 0
        # Same torn bytes mid-file: corruption, counted and warned.
        with open(scalars, "wb") as handle:
            handle.write(lines[1][: len(lines[1]) // 2] + b"\n" + lines[0])
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.warns(RuntimeWarning, match="mid-file corruption"):
                with ResultStore(directory) as store:
                    assert len(store) == 1
                    assert store.skipped_lines == 1
        assert registry.counter("fleet.store_skipped_lines") == 1

    def test_duplicate_key_keeps_last_record(self, lifetime_results, tmp_path):
        first = lifetime_results.results["hayat"][0]
        second = lifetime_results.results["hayat"][1]
        with ResultStore(str(tmp_path / "store")) as store:
            store.append("k", first, requirement_ghz=1.0)
            store.append("k", second, requirement_ghz=1.0)
            assert len(store) == 1
        with ResultStore(str(tmp_path / "store")) as reopened:
            assert reopened.record("k")["scalars"]["chip_id"] == second.chip_id

    def test_thousand_job_store_stays_indexed_not_resident(
        self, lifetime_results, tmp_path
    ):
        """The million-job contract in miniature: N appended jobs cost
        the store one (offset, length) index entry each — results live
        on disk, and streaming them back visits every record."""
        result = lifetime_results.results["hayat"][0]
        with ResultStore(str(tmp_path / "store")) as store:
            for index in range(1000):
                store.append(f"job-{index}", result, requirement_ghz=1.0)
            assert len(store) == 1000
            assert all(
                isinstance(v, tuple) and len(v) == 2
                for v in store._index.values()
            )
            assert sum(1 for _ in store.records()) == 1000
        aggregates = aggregate_store(ResultStore(str(tmp_path / "store")))
        assert aggregates.jobs == 1000


class TestAggregates:
    def test_running_stat_matches_numpy(self):
        values = np.linspace(-3.0, 7.0, 101)
        stat = RunningStat()
        for value in values:
            stat.add(value)
        assert stat.count == values.size
        np.testing.assert_allclose(stat.mean, values.mean())
        np.testing.assert_allclose(stat.stddev, values.std(ddof=1))
        assert (stat.min, stat.max) == (values.min(), values.max())

    def test_running_stat_skips_non_finite(self):
        stat = RunningStat()
        for value in (1.0, None, float("nan"), float("inf"), 3.0):
            stat.add(value)
        assert stat.count == 2 and stat.mean == 2.0

    def test_histogram_percentiles_on_uniform_data(self):
        histogram = Histogram(0.0, 1.0, bins=256)
        histogram.add_array(np.linspace(0.0, 1.0, 10_001))
        for q in (5.0, 50.0, 95.0):
            assert histogram.percentile(q) == pytest.approx(
                q / 100.0, abs=2.0 / 256
            )
        assert Histogram(0.0, 1.0).percentile(50.0) is None

    def test_store_and_campaign_paths_agree_bit_for_bit(
        self, lifetime_results, tmp_path
    ):
        with ResultStore(str(tmp_path / "store")) as store:
            for policy, results in lifetime_results.results.items():
                for result in results:
                    store.append(
                        f"{policy}|{result.chip_id}",
                        result,
                        requirement_ghz=1.0,
                    )
            from_store = aggregate_store(store)
        from_campaign = aggregate_campaign(
            lifetime_results, requirement_ghz=1.0
        )
        assert json.dumps(
            from_store.to_dict(baseline="vaa"), sort_keys=True
        ) == json.dumps(from_campaign.to_dict(baseline="vaa"), sort_keys=True)

    def test_normalized_requires_a_recorded_baseline(self, lifetime_results):
        aggregates = aggregate_campaign(lifetime_results)
        with pytest.raises(ValueError, match="baseline policy 'missing'"):
            aggregates.normalized("missing")
        normalized = aggregates.normalized("vaa")
        assert set(normalized) == {"hayat"}
        assert 0.5 in normalized["hayat"]


class TestFleetRequest:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            FleetRequest.from_dict(fleet_request(policies=["warp-drive"]))

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown request field"):
            FleetRequest.from_dict(fleet_request(frobnicate=True))

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            FleetRequest.from_dict(fleet_request(config={"warp": 9}))

    def test_baseline_must_be_requested(self):
        with pytest.raises(ValueError, match="baseline"):
            FleetRequest.from_dict(
                fleet_request(policies=["hayat"], baseline="vaa")
            )

    def test_content_addressed_request_id(self):
        a = FleetRequest.from_dict(fleet_request())
        b = FleetRequest.from_dict(fleet_request())
        c = FleetRequest.from_dict(fleet_request(seed=4))
        assert a.request_id == b.request_id != c.request_id

    def test_shortcuts_land_in_config(self):
        request = FleetRequest.from_dict(fleet_request(years=2.0, seed=7))
        assert request.config.lifetime_years == 2.0
        assert request.config.seed == 7
        assert request.job_count == 4


class TestDaemon:
    def test_serve_then_repeat_is_all_cache_hits(self, tmp_path):
        root = str(tmp_path / "fleet")
        registry = MetricsRegistry()
        with use_registry(registry):
            with FleetDaemon(root, workers=1) as daemon:
                request_id = submit_request(root, fleet_request())
                assert daemon.serve(drain=True) == 1
                first = json.load(
                    open(os.path.join(root, "results", f"{request_id}.json"))
                )
                assert first["simulated"] == first["jobs"] == 4
                assert first["cache_hits"] == 0
                submit_request(root, fleet_request())
                assert daemon.serve(drain=True) == 1
                second = json.load(
                    open(os.path.join(root, "results", f"{request_id}.json"))
                )
        # Repeat submission answered fully from the store...
        assert second["cache_hits"] == second["jobs"]
        assert second["simulated"] == 0
        assert registry.counter("fleet.cache_hits") == second["jobs"]
        # ...with byte-identical aggregates.
        assert json.dumps(first["aggregates"], sort_keys=True) == json.dumps(
            second["aggregates"], sort_keys=True
        )
        assert "normalized" in first["aggregates"]

    def test_restarted_daemon_rebuilds_identical_aggregates(self, tmp_path):
        root = str(tmp_path / "fleet")
        with FleetDaemon(root) as daemon:
            submit_request(root, fleet_request())
            daemon.serve(drain=True)
            live = daemon.aggregates.to_dict()
        with FleetDaemon(root) as restarted:
            rebuilt = restarted.aggregates.to_dict()
        assert json.dumps(live, sort_keys=True) == json.dumps(
            rebuilt, sort_keys=True
        )

    def test_invalid_request_gets_error_response(self, tmp_path):
        root = str(tmp_path / "fleet")
        with FleetDaemon(root) as daemon:
            spool = os.path.join(root, "spool")
            with open(os.path.join(spool, "bad.json"), "w") as handle:
                handle.write('{"policies": ["warp-drive"]}')
            assert daemon.serve(drain=True) == 1
            assert daemon.requests_failed == 1
        response = json.load(
            open(os.path.join(root, "results", "bad.json"))
        )
        assert "unknown policy" in response["error"]
        assert not os.listdir(spool)

    def test_different_requirement_misses_the_cache(self, tmp_path):
        """The MTTF requirement shapes the stored scalars, so it must be
        part of the job identity — never answered by a stale record."""
        root = str(tmp_path / "fleet")
        with FleetDaemon(root) as daemon:
            submit_request(root, fleet_request())
            daemon.serve(drain=True)
            rid = submit_request(root, fleet_request(requirement_ghz=2.5))
            daemon.serve(drain=True)
            response = json.load(
                open(os.path.join(root, "results", f"{rid}.json"))
            )
        assert response["cache_hits"] == 0
        assert response["simulated"] == response["jobs"]

    def test_status_cold_and_live(self, tmp_path):
        root = str(tmp_path / "fleet")
        cold = fleet_status(root)
        assert cold["jobs_stored"] == 0 and cold["queue_depth"] == 0
        with FleetDaemon(root) as daemon:
            submit_request(root, fleet_request())
            daemon.serve(drain=True)
        live = fleet_status(root)
        assert live["jobs_stored"] == 4
        assert live["requests_done"] == 1
        assert live["aggregates"]["jobs"] == 4

    def test_failed_jobs_are_not_cached(self, tmp_path):
        """A job that exhausts retries must stay absent from the store
        so a later request re-attempts it instead of caching failure."""
        from tests.test_sim_supervisor import AlwaysCrashPolicy

        from repro.sim.fleet import daemon as daemon_module

        root = str(tmp_path / "fleet")
        crashing = lambda: AlwaysCrashPolicy("chip-00")  # noqa: E731
        original = daemon_module.FLEET_POLICIES
        daemon_module.FLEET_POLICIES = dict(original, crashy=crashing)
        try:
            with FleetDaemon(root) as daemon:
                rid = submit_request(
                    root,
                    fleet_request(policies=["crashy"], baseline=None),
                )
                daemon.serve(drain=True)
                response = json.load(
                    open(os.path.join(root, "results", f"{rid}.json"))
                )
                assert len(response["failures"]) == 1
                assert response["failures"][0]["chip"] == "chip-00"
                # One chip crashed, one completed: only the success is
                # stored, and a re-run re-simulates only the failure.
                assert len(daemon.store) == 1
                submit_request(
                    root, fleet_request(policies=["crashy"], baseline=None)
                )
                daemon.serve(drain=True)
                retry = json.load(
                    open(os.path.join(root, "results", f"{rid}.json"))
                )
                assert retry["cache_hits"] == 1
                assert retry["simulated"] == 1
        finally:
            daemon_module.FLEET_POLICIES = original


class TestDaemonPool:
    def test_warm_pool_reused_across_requests(self, tmp_path):
        """Back-to-back requests with the same campaign digest must run
        on the same spawn pool (signature-keyed reuse), not rebuild it."""
        root = str(tmp_path / "fleet")
        with FleetDaemon(root, workers=2) as daemon:
            submit_request(
                root, fleet_request(policies=["hayat"], baseline=None)
            )
            daemon.serve(drain=True)
            first_pool = daemon.pool_host._pool
            assert first_pool is not None
            # Different requirement: same digest (config unchanged), so
            # jobs re-simulate on the *same* warm pool.
            submit_request(
                root,
                fleet_request(
                    policies=["hayat"], baseline=None, requirement_ghz=2.0
                ),
            )
            daemon.serve(drain=True)
            assert daemon.pool_host._pool is first_pool
            assert len(daemon.store) == 4


class TestKillResume:
    def test_sigkill_mid_run_then_resume_bit_identical(self, tmp_path):
        """The acceptance scenario: SIGKILL the daemon mid-request,
        restart it, and the response aggregates are byte-identical to an
        uninterrupted fleet's."""
        request = fleet_request(chips=4, years=1.0)

        # Uninterrupted reference fleet.
        reference_root = str(tmp_path / "reference")
        with FleetDaemon(reference_root) as daemon:
            request_id = submit_request(reference_root, request)
            daemon.serve(drain=True)
        reference = json.load(
            open(
                os.path.join(
                    reference_root, "results", f"{request_id}.json"
                )
            )
        )

        # Victim fleet: spawn the CLI daemon, kill it mid-request.
        root = str(tmp_path / "fleet")
        submit_request(root, request)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--fleet-dir", root, "--drain", "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        scalars = os.path.join(root, "store", "scalars.jsonl")
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it; resume is
                # then a pure cache replay, which must still match.
            if os.path.exists(scalars) and os.path.getsize(scalars) > 0:
                break
            time.sleep(0.05)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        # Restart: the spool still holds the request (never retired
        # mid-run); stored jobs answer from cache, the rest re-run.
        with FleetDaemon(root) as daemon:
            assert daemon.serve(drain=True) == 1
        resumed = json.load(
            open(os.path.join(root, "results", f"{request_id}.json"))
        )
        assert resumed["jobs"] == reference["jobs"]
        assert json.dumps(
            resumed["aggregates"], sort_keys=True
        ) == json.dumps(reference["aggregates"], sort_keys=True)
