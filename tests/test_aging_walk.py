"""The deduplicating, delta-aware walk engine (`repro.aging.walk`).

The engine's contract is strict: in the default (exact) mode, every
path through it — intra-batch dedup scatter, cross-call memo hits,
shared count bounds, the fused age-shift lookup, and every adaptive
cost heuristic in between — must return arrays *bit-identical* to
:meth:`repro.aging.tables.AgingTable.next_health`.  These tests pin
that equality across random monotone and non-monotone tables, forced
duplicate batches, dark cores, clamped ages and mixed shapes, plus the
approximate mode's documented error bound and the config/CLI escape
hatches.
"""

import pickle

import numpy as np
import pytest

from repro.aging.estimator import CoreAgingEstimator
from repro.aging.health import HealthState, advance_batch
from repro.aging.tables import AgingTable, build_aging_table
from repro.aging.walk import (
    _PROBE_FLOOR,
    _PROBE_HOLDOFF,
    WalkEngine,
    WalkOptions,
    get_walk_engine,
    walk_crossing_counts,
    walk_next_health,
    walk_options,
)
from repro.obs import MetricsRegistry, use_registry
from repro.sim.config import SimulationConfig


def _fresh_engine(table) -> WalkEngine:
    """A cold engine (no memo warmth from other tests on the shared table)."""
    return WalkEngine(table)


def _random_batch(rng, n, table, dark_frac=0.25, pristine_frac=0.3):
    """A campaign-shaped batch: dark cores, pristine health, edge temps."""
    t = rng.uniform(280.0, 445.0, n)  # straddles the table's temp range
    d = rng.uniform(0.0, 1.0, n)
    d[rng.random(n) < dark_frac] = 0.0  # dark cores: duty exactly 0
    d[rng.random(n) < 0.05] = 1.0
    h = rng.uniform(0.6, 1.0, n)
    h[rng.random(n) < pristine_frac] = 1.0  # pristine: exactly 1.0
    h[rng.random(n) < 0.05] = 0.02  # deep degradation: age-axis clamp
    # Exactly-stored values land inverse ages on grid points.
    stored = table._values_flat
    pick = rng.random(n) < 0.15
    h[pick] = stored[rng.integers(0, stored.size, int(pick.sum()))]
    return t, d, np.clip(h, 1e-3, 1.0)


def _random_monotone_table(rng) -> AgingTable:
    """A random strictly-valid table, non-increasing along the age axis."""
    nt, ndty, ny = 5, 6, 12
    temp = 280.0 + np.cumsum(rng.uniform(5.0, 30.0, nt))
    duty = np.concatenate([[0.0], np.cumsum(rng.uniform(0.02, 0.2, ndty - 1))])
    duty = duty / duty[-1]
    age = np.concatenate([[0.0], np.cumsum(rng.uniform(0.1, 5.0, ny - 1))])
    factors = rng.uniform(0.9, 1.0, (nt, ndty, ny))
    factors[rng.random((nt, ndty, ny)) < 0.3] = 1.0  # exact flat runs
    factors[..., 0] = 1.0
    values = rng.uniform(0.95, 1.0, (nt, ndty, 1)) * np.cumprod(factors, axis=-1)
    values = np.maximum(values, 1e-3)
    table = AgingTable(temp, duty, age, values)
    assert table._age_monotone
    return table


def _random_nonmonotone_table(rng) -> AgingTable:
    values = rng.uniform(0.5, 1.0, (4, 5, 8))
    table = AgingTable(
        np.array([290.0, 330.0, 370.0, 410.0]),
        np.array([0.0, 0.2, 0.5, 0.8, 1.0]),
        np.array([0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0]),
        values,
    )
    assert not table._age_monotone
    return table


class TestDedupBitIdentity:
    def test_forced_duplicates_scatter(self, aging_table):
        rng = np.random.default_rng(0)
        engine = _fresh_engine(aging_table)
        base_t, base_d, base_h = _random_batch(rng, 60, aging_table)
        reps = rng.integers(0, 60, 480)  # heavy duplication, shuffled
        t, d, h = base_t[reps], base_d[reps], base_h[reps]
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(t, d, h, 0.5)
        ref = aging_table.next_health(t, d, h, 0.5)
        np.testing.assert_array_equal(got, ref)
        counters = registry.snapshot().counters
        unique = counters["aging.walk_unique"]
        assert counters["aging.walk_dedup_hits"] == 480 - unique
        assert counters["aging.walk_dedup_hits"] > 0
        assert unique <= 60  # at most the distinct triples

    def test_all_distinct_batch(self, aging_table):
        rng = np.random.default_rng(1)
        engine = _fresh_engine(aging_table)
        t, d, h = _random_batch(rng, 300, aging_table, dark_frac=0.0,
                                pristine_frac=0.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(t, d, h, 0.5)
        np.testing.assert_array_equal(
            got, aging_table.next_health(t, d, h, 0.5)
        )
        counters = registry.snapshot().counters
        # Temperatures are all bit-distinct, so nothing deduplicates.
        assert counters["aging.walk_unique"] == 300
        assert counters.get("aging.walk_dedup_hits", 0) == 0

    def test_fuzz_random_monotone_tables(self):
        rng = np.random.default_rng(2)
        for _ in range(8):
            table = _random_monotone_table(rng)
            engine = _fresh_engine(table)
            for _ in range(5):
                n = int(rng.integers(1, 300))
                t = rng.uniform(temp_lo := table.temp_grid_k[0] - 10,
                                table.temp_grid_k[-1] + 10, n)
                d = rng.uniform(0, 1, n)
                d[rng.random(n) < 0.3] = 0.0
                h = rng.uniform(0.4, 1.0, n)
                h[rng.random(n) < 0.3] = 1.0
                if rng.random() < 0.5:  # force duplicates
                    reps = rng.integers(0, n, n)
                    t, d, h = t[reps], d[reps], h[reps]
                epoch = float(rng.choice([0.0, 0.25, 1.0, 7.5]))
                np.testing.assert_array_equal(
                    engine.next_health(t, d, h, epoch),
                    table.next_health(t, d, h, epoch),
                )

    def test_fuzz_non_monotone_fallback(self):
        rng = np.random.default_rng(3)
        table = _random_nonmonotone_table(rng)
        engine = _fresh_engine(table)
        for _ in range(10):
            n = int(rng.integers(1, 150))
            t = rng.uniform(280, 420, n)
            d = rng.uniform(0, 1, n)
            h = rng.uniform(0.5, 1.0, n)
            if rng.random() < 0.5:
                reps = rng.integers(0, n, n)
                t, d, h = t[reps], d[reps], h[reps]
            np.testing.assert_array_equal(
                engine.next_health(t, d, h, 0.5),
                table.next_health(t, d, h, 0.5),
            )

    def test_dark_cores_and_clamps(self, aging_table):
        engine = _fresh_engine(aging_table)
        t = np.array([250.0, 300.0, 500.0, 358.0, 358.0, 430.0])
        d = np.array([0.0, 0.0, 0.0, 1.0, 0.5, 1.0])
        h = np.array([1.0, 0.9, 1.0, 0.02, 1.0, 0.02])
        for epoch in (0.0, 0.5, 200.0):
            np.testing.assert_array_equal(
                engine.next_health(t, d, h, epoch),
                aging_table.next_health(t, d, h, epoch),
            )

    def test_single_element_and_scalar(self, aging_table):
        engine = _fresh_engine(aging_table)
        np.testing.assert_array_equal(
            engine.next_health(358.0, 0.5, 0.93, 0.5),
            aging_table.next_health(358.0, 0.5, 0.93, 0.5),
        )
        np.testing.assert_array_equal(
            engine.next_health([358.0], [0.5], [0.93], 0.5),
            aging_table.next_health([358.0], [0.5], [0.93], 0.5),
        )

    def test_broadcast_scalar_health(self, aging_table):
        rng = np.random.default_rng(4)
        engine = _fresh_engine(aging_table)
        t, d, _ = _random_batch(rng, 40, aging_table)
        np.testing.assert_array_equal(
            engine.next_health(t, d, 0.95, 0.5),
            aging_table.next_health(t, d, 0.95, 0.5),
        )

    def test_negative_epoch_rejected(self, aging_table):
        with pytest.raises(ValueError):
            _fresh_engine(aging_table).next_health([358.0], [0.5], [0.9], -0.1)


class TestDeltaMemo:
    def test_cross_call_memo_hits(self, aging_table):
        rng = np.random.default_rng(5)
        engine = _fresh_engine(aging_table)
        t, d, h = _random_batch(rng, 200, aging_table)
        registry = MetricsRegistry()
        with use_registry(registry):
            first = engine.next_health(t, d, h, 0.5)
            second = engine.next_health(t, d, h, 0.5)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(
            second, aging_table.next_health(t, d, h, 0.5)
        )
        counters = registry.snapshot().counters
        assert counters["aging.walk_delta_hits"] > 0

    def test_overlapping_batches_stay_exact(self, aging_table):
        rng = np.random.default_rng(6)
        engine = _fresh_engine(aging_table)
        pool_t, pool_d, pool_h = _random_batch(rng, 500, aging_table)
        for _ in range(12):
            idx = rng.integers(0, 500, 250)  # overlapping re-draws
            t, d, h = pool_t[idx], pool_d[idx], pool_h[idx]
            epoch = float(rng.choice([0.25, 0.5]))  # per-epoch memos
            np.testing.assert_array_equal(
                engine.next_health(t, d, h, epoch),
                aging_table.next_health(t, d, h, epoch),
            )

    def test_memo_deactivates_without_reuse(self, aging_table):
        rng = np.random.default_rng(7)
        engine = _fresh_engine(aging_table)
        # Every batch fully distinct: after warmup the EMA stays at 0,
        # the memo clears, and the engine stops paying for probes.
        for i in range(16):
            t = rng.uniform(290, 430, 100)
            d = rng.uniform(0.01, 1.0, 100)
            h = rng.uniform(0.7, 1.0, 100)
            engine.next_health(t, d, h, 0.5)
        assert engine._reuse_ema < 0.02
        assert not engine._memos

    def test_memo_blocks_consolidate_and_cap(self, aging_table):
        from repro.aging.walk import _DeltaMemo

        rng = np.random.default_rng(8)
        memo = _DeltaMemo()
        for _ in range(_DeltaMemo.MAX_BLOCKS + 3):
            t = rng.uniform(290, 430, 50)
            d = rng.uniform(0, 1, 50)
            h = rng.uniform(0.5, 1.0, 50)
            memo.insert(
                t.view(np.uint64), d.view(np.uint64), h.view(np.uint64),
                rng.random(50),
            )
        assert len(memo.blocks) <= _DeltaMemo.MAX_BLOCKS

    def test_memo_never_wrong_on_lookup(self, aging_table):
        from repro.aging.walk import _DeltaMemo

        rng = np.random.default_rng(9)
        memo = _DeltaMemo()
        t = rng.uniform(290, 430, 100)
        d = rng.uniform(0, 1, 100)
        h = rng.uniform(0.5, 1.0, 100)
        res = rng.random(100)
        memo.insert(
            t.view(np.uint64), d.view(np.uint64), h.view(np.uint64), res
        )
        out = np.empty(100)
        found = memo.lookup(
            t.view(np.uint64), d.view(np.uint64), h.view(np.uint64), out
        )
        assert found.all()
        np.testing.assert_array_equal(out, res)
        # Unseen triples must miss, never mis-answer.
        t2 = t + 1e-9
        found2 = memo.lookup(
            t2.view(np.uint64), d.view(np.uint64), h.view(np.uint64),
            np.empty(100),
        )
        assert not found2.any()


class TestEstimationWiring:
    def test_estimate_next_health_shapes(self, aging_table, chip, floorplan):
        from repro.core.estimation import OnlineHealthEstimator
        from repro.power import PowerModel
        from repro.thermal import ThermalPredictor, ThermalRCNetwork

        rng = np.random.default_rng(10)
        predictor = ThermalPredictor.learn(
            ThermalRCNetwork(floorplan), PowerModel.for_chip(chip)
        )
        estimator = OnlineHealthEstimator(predictor, aging_table)
        n = predictor.num_cores
        temps = rng.uniform(300, 400, n)
        duties = rng.uniform(0, 1, n)
        health = rng.uniform(0.8, 1.0, n)
        flat = estimator.estimate_next_health(temps, duties, health, 0.5)
        with walk_options(dedup=False):
            ref = estimator.estimate_next_health(temps, duties, health, 0.5)
        np.testing.assert_array_equal(flat, ref)
        temps2 = rng.uniform(300, 400, (7, n))
        duties2 = np.tile(duties, (7, 1))
        batched = estimator.estimate_next_health(temps2, duties2, health, 0.5)
        with walk_options(dedup=False):
            ref2 = estimator.estimate_next_health(temps2, duties2, health, 0.5)
        np.testing.assert_array_equal(batched, ref2)
        rows = estimator.estimate_next_health_rows(
            temps2, duties2, np.tile(health, (7, 1)), 0.5
        )
        np.testing.assert_array_equal(rows, batched)

    def test_advance_batch_routes_through_engine(self, aging_table):
        rng = np.random.default_rng(11)
        states = [
            HealthState(aging_table, rng.uniform(2.0, 3.0, 8))
            for _ in range(5)
        ]
        temps = rng.uniform(300, 420, (5, 8))
        duties = rng.uniform(0, 1, (5, 8))
        registry = MetricsRegistry()
        with use_registry(registry):
            advance_batch(states, temps, duties, 0.5)
        snapshot = registry.snapshot()
        assert "aging.walk" in snapshot.timers
        assert snapshot.counters["aging.walk_unique"] > 0

    def test_health_state_estimate_vs_hatch(self, aging_table):
        rng = np.random.default_rng(12)
        state = HealthState(aging_table, rng.uniform(2.0, 3.0, 16))
        state.advance(rng.uniform(320, 400, 16), rng.uniform(0, 1, 16), 0.5)
        temps = rng.uniform(320, 400, 16)
        duties = rng.uniform(0, 1, 16)
        engine_next = state.estimate_next(temps, duties, 0.5)
        with walk_options(dedup=False):
            direct_next = state.estimate_next(temps, duties, 0.5)
        np.testing.assert_array_equal(engine_next, direct_next)


class TestOptionsAndConfig:
    def test_default_options_exact(self):
        opts = WalkOptions()
        assert opts.dedup is True
        assert opts.approx_tol is None

    def test_dedup_off_bypasses_engine(self, aging_table):
        rng = np.random.default_rng(13)
        t, d, h = _random_batch(rng, 50, aging_table)
        registry = MetricsRegistry()
        with use_registry(registry), walk_options(dedup=False):
            out = walk_next_health(aging_table, t, d, h, 0.5)
        np.testing.assert_array_equal(
            out, aging_table.next_health(t, d, h, 0.5)
        )
        # No engine counters: the hatch calls the table directly.
        assert "aging.walk_unique" not in registry.snapshot().counters

    def test_nested_options_inherit(self):
        with walk_options(approx_tol=0.5):
            with walk_options(dedup=False) as inner:
                assert inner.approx_tol == 0.5
                assert inner.dedup is False
        with walk_options(dedup=False):
            with walk_options(approx_tol=None) as inner:
                assert inner.dedup is False
                assert inner.approx_tol is None

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            WalkOptions(approx_tol=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(approx_table_walk=-1.0)

    def test_config_fields_default_exact(self):
        cfg = SimulationConfig()
        assert cfg.walk_dedup is True
        assert cfg.approx_table_walk is None

    def test_pickled_table_drops_engine(self, aging_table):
        get_walk_engine(aging_table)  # ensure the cache exists
        clone = pickle.loads(pickle.dumps(aging_table))
        assert not hasattr(clone, "_walk_engine")
        rng = np.random.default_rng(14)
        t, d, h = _random_batch(rng, 30, aging_table)
        np.testing.assert_array_equal(
            walk_next_health(clone, t, d, h, 0.5),
            aging_table.next_health(t, d, h, 0.5),
        )


class TestApproxMode:
    def test_error_within_documented_bound(self, aging_table):
        rng = np.random.default_rng(15)
        engine = _fresh_engine(aging_table)
        table = aging_table
        tol = 2.0
        # Documented bound: worst temperature-direction slope of the
        # stored table times the worst snap distance (tol/2), with a 4x
        # safety factor covering the inverse-then-forward composition
        # (the walk reads the table twice through the snapped axis).
        slope = np.max(
            np.abs(np.diff(table.values, axis=0))
            / table._temp_spans[:, None, None]
        )
        bound = 4.0 * slope * (tol / 2.0)
        worst = 0.0
        for _ in range(10):
            t, d, h = _random_batch(rng, 300, table)
            exact = table.next_health(t, d, h, 0.5)
            approx = engine.next_health(t, d, h, 0.5, approx_tol=tol)
            worst = max(worst, float(np.max(np.abs(approx - exact))))
        assert worst <= bound
        assert worst > 0.0  # the mode genuinely approximates

    def test_snapping_raises_hit_rates(self, aging_table):
        rng = np.random.default_rng(16)
        engine = _fresh_engine(aging_table)
        base_t = 358.0 + rng.uniform(-0.2, 0.2, 400)  # thermal jitter
        d = np.full(400, 0.5)
        h = np.full(400, 0.95)
        registry = MetricsRegistry()
        with use_registry(registry):
            engine.next_health(base_t, d, h, 0.5, approx_tol=1.0)
        counters = registry.snapshot().counters
        # All 400 jittered temps snap into at most a couple of buckets.
        assert counters["aging.walk_dedup_hits"] >= 398

    def test_exact_mode_untouched_by_default(self, aging_table):
        rng = np.random.default_rng(17)
        t, d, h = _random_batch(rng, 100, aging_table)
        np.testing.assert_array_equal(
            walk_next_health(aging_table, t, d, h, 0.5),
            aging_table.next_health(t, d, h, 0.5),
        )


class TestSeededWalk:
    """Bracket warm-start: bit-identical for ANY seeds, fast for good ones."""

    def test_exact_seeds_bit_identical_and_reused(self, aging_table):
        rng = np.random.default_rng(20)
        engine = _fresh_engine(aging_table)
        t, d, h = _random_batch(rng, 400, aging_table)
        counts = engine.crossing_counts(t, d, h)
        assert counts is not None and counts.shape == t.shape
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(t, d, h, 0.5, seed_counts=counts)
        np.testing.assert_array_equal(
            got, aging_table.next_health(t, d, h, 0.5)
        )
        counters = registry.snapshot().counters
        # Seeds from the very same state verify nearly everywhere (the
        # few exceptions are grid-point sentinels the seeded gather
        # cannot express).
        assert counters["aging.walk_bracket_reuse"] >= 0.9 * t.size
        assert counters["aging.walk_unique"] == t.size

    def test_garbage_seeds_fuzz_bit_identical(self):
        """Any integer seeds — wild, negative, out of range — must be
        verified away without changing a single bit."""
        rng = np.random.default_rng(21)
        for _ in range(8):
            table = _random_monotone_table(rng)
            engine = _fresh_engine(table)
            t, d, h = _random_batch(rng, 250, table)
            n_y = table.age_grid_years.size
            seeds = rng.integers(-5, 3 * n_y, t.size)
            got = engine.next_health(t, d, h, 0.5, seed_counts=seeds)
            np.testing.assert_array_equal(
                got, table.next_health(t, d, h, 0.5)
            )

    def test_perturbed_temps_with_base_seeds(self, aging_table):
        """The delta-engine scenario: candidate temperatures are small
        perturbations of the base row whose counts seeded the walk."""
        rng = np.random.default_rng(22)
        engine = _fresh_engine(aging_table)
        t, d, h = _random_batch(rng, 300, aging_table)
        counts = engine.crossing_counts(t, d, h)
        t_pert = t + rng.uniform(-2.0, 2.0, t.size)
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(
                t_pert, d, h, 0.5, seed_counts=counts
            )
        np.testing.assert_array_equal(
            got, aging_table.next_health(t_pert, d, h, 0.5)
        )
        # Small thermal perturbations rarely move the age bracket, so
        # most seeds still verify.
        counters = registry.snapshot().counters
        assert counters["aging.walk_bracket_reuse"] > 0.5 * t.size

    def test_seed_length_mismatch_rejected(self, aging_table):
        engine = _fresh_engine(aging_table)
        rng = np.random.default_rng(23)
        t, d, h = _random_batch(rng, 50, aging_table)
        with pytest.raises(ValueError):
            engine.next_health(
                t, d, h, 0.5, seed_counts=np.zeros(49, dtype=np.intp)
            )

    def test_nonmonotone_table_ignores_seeds(self):
        rng = np.random.default_rng(24)
        table = _random_nonmonotone_table(rng)
        engine = _fresh_engine(table)
        assert engine.crossing_counts(
            np.array([300.0]), np.array([0.5]), np.array([0.9])
        ) is None
        t, d, h = _random_batch(rng, 200, table)
        seeds = rng.integers(0, 8, t.size)
        got = engine.next_health(t, d, h, 0.5, seed_counts=seeds)
        np.testing.assert_array_equal(got, table.next_health(t, d, h, 0.5))

    def test_module_function_respects_dedup_hatch(self, aging_table):
        rng = np.random.default_rng(25)
        t, d, h = _random_batch(rng, 60, aging_table)
        counts = walk_crossing_counts(aging_table, t, d, h)
        assert counts is not None
        with walk_options(dedup=False):
            # The hatch bypasses the engine entirely: no counts to
            # seed with, and seeds passed anyway are ignored.
            assert walk_crossing_counts(aging_table, t, d, h) is None
            out = walk_next_health(
                aging_table, t, d, h, 0.5, seed_counts=counts
            )
        np.testing.assert_array_equal(
            out, aging_table.next_health(t, d, h, 0.5)
        )


class TestProbeBypass:
    """The dedup/memo probes step aside when they cannot pay for
    themselves; results stay bit-identical either way."""

    def test_small_batch_bypasses_probes(self, aging_table):
        rng = np.random.default_rng(26)
        engine = _fresh_engine(aging_table)
        base_t, base_d, base_h = _random_batch(rng, 20, aging_table)
        reps = rng.integers(0, 20, _PROBE_FLOOR - 1)  # heavy duplication
        t, d, h = base_t[reps], base_d[reps], base_h[reps]
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(t, d, h, 0.5)
        np.testing.assert_array_equal(
            got, aging_table.next_health(t, d, h, 0.5)
        )
        counters = registry.snapshot().counters
        # Below the floor nothing probes: every element walks.
        assert counters["aging.walk_unique"] == t.size
        assert counters.get("aging.walk_dedup_hits", 0) == 0

    def test_holdoff_cycle_after_deactivation(self, aging_table):
        rng = np.random.default_rng(27)
        engine = _fresh_engine(aging_table)
        # Warmup on all-distinct batches: zero reuse, so the EMA stays
        # at the floor and the warmup's last call arms the holdoff.
        for _ in range(8):
            t, d, h = _random_batch(
                rng, 200, aging_table, dark_frac=0.0, pristine_frac=0.0
            )
            engine.next_health(t, d, h, 0.5)
        assert engine._probe_holdoff == _PROBE_HOLDOFF

        base_t, base_d, base_h = _random_batch(rng, 40, aging_table)
        reps = rng.integers(0, 40, 320)
        t, d, h = base_t[reps], base_d[reps], base_h[reps]
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(t, d, h, 0.5)
        np.testing.assert_array_equal(
            got, aging_table.next_health(t, d, h, 0.5)
        )
        counters = registry.snapshot().counters
        # Held off: the duplicates went unnoticed (insurance recovered).
        assert counters["aging.walk_unique"] == 320
        assert counters.get("aging.walk_dedup_hits", 0) == 0
        assert engine._probe_holdoff == _PROBE_HOLDOFF - 1

        # Drain the holdoff; the next call probes again and catches the
        # redundancy, reactivating the layers.
        for _ in range(_PROBE_HOLDOFF - 1):
            engine.next_health(t, d, h, 0.5)
        assert engine._probe_holdoff == 0
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(t, d, h, 0.5)
        np.testing.assert_array_equal(
            got, aging_table.next_health(t, d, h, 0.5)
        )
        assert registry.snapshot().counters["aging.walk_dedup_hits"] > 0

    def test_seeded_walk_skips_probes(self, aging_table):
        """Seeded batches go straight to the seeded walk — duplicates
        are not even probed for (candidate temps are all distinct by
        construction; the probe would never pay)."""
        rng = np.random.default_rng(28)
        engine = _fresh_engine(aging_table)
        base_t, base_d, base_h = _random_batch(rng, 30, aging_table)
        reps = rng.integers(0, 30, 300)
        t, d, h = base_t[reps], base_d[reps], base_h[reps]
        counts = engine.crossing_counts(t, d, h)
        registry = MetricsRegistry()
        with use_registry(registry):
            got = engine.next_health(t, d, h, 0.5, seed_counts=counts)
        np.testing.assert_array_equal(
            got, aging_table.next_health(t, d, h, 0.5)
        )
        counters = registry.snapshot().counters
        assert counters["aging.walk_unique"] == 300
        assert counters.get("aging.walk_dedup_hits", 0) == 0
        assert counters["aging.walk_bracket_reuse"] >= 0.9 * 300
