"""Simulation configuration."""

import pytest

from repro.sim import SimulationConfig


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SimulationConfig()
        assert cfg.lifetime_years == 10.0
        assert cfg.epoch_years == 0.5  # "3 or 6 months" epochs
        assert cfg.num_epochs == 20

    def test_steps_per_window(self):
        cfg = SimulationConfig(window_s=30.0, control_dt_s=1.0)
        assert cfg.steps_per_window == 30

    def test_rejects_dt_above_window(self):
        with pytest.raises(ValueError):
            SimulationConfig(window_s=1.0, control_dt_s=2.0)

    def test_rejects_bad_load_factor(self):
        with pytest.raises(ValueError):
            SimulationConfig(load_factor=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(load_factor=1.5)

    def test_rejects_bad_dark_fraction(self):
        with pytest.raises(ValueError):
            SimulationConfig(dark_fraction_min=1.2)


class TestContextProperties:
    def test_max_on_cores(self, chip, aging_table):
        from repro.sim import ChipContext

        ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
        assert ctx.max_on_cores == 32
        ctx25 = ChipContext(chip, aging_table, dark_fraction_min=0.25)
        assert ctx25.max_on_cores == 48
