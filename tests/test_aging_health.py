"""HealthState: epoch advancement and candidate previews."""

import numpy as np
import pytest

from repro.aging import HealthState


@pytest.fixture()
def state(aging_table):
    fmax = np.array([3.0, 3.5, 2.5, 4.0])
    return HealthState(aging_table, fmax)


class TestInitialState:
    def test_starts_at_full_health(self, state):
        np.testing.assert_allclose(state.health, 1.0)
        assert state.elapsed_years == 0.0

    def test_fmax_equals_initial(self, state):
        np.testing.assert_allclose(state.fmax_ghz, state.fmax_init_ghz)

    def test_rejects_nonpositive_fmax(self, aging_table):
        with pytest.raises(ValueError):
            HealthState(aging_table, np.array([3.0, -1.0]))


class TestAdvance:
    def test_health_declines_under_stress(self, state):
        temps = np.full(4, 370.0)
        duties = np.full(4, 0.8)
        state.advance(temps, duties, 0.5)
        assert (state.health < 1.0).all()
        assert state.elapsed_years == pytest.approx(0.5)

    def test_fmax_tracks_health(self, state):
        temps = np.full(4, 370.0)
        duties = np.full(4, 0.8)
        state.advance(temps, duties, 0.5)
        np.testing.assert_allclose(
            state.fmax_ghz, state.fmax_init_ghz * state.health
        )

    def test_unstressed_core_spared(self, state):
        temps = np.array([370.0, 370.0, 370.0, 330.0])
        duties = np.array([0.8, 0.8, 0.8, 0.0])
        state.advance(temps, duties, 1.0)
        health = state.health
        assert health[3] == pytest.approx(1.0, abs=1e-9)
        assert (health[:3] < 1.0).all()

    def test_hotter_core_ages_faster(self, state):
        temps = np.array([340.0, 400.0, 370.0, 370.0])
        duties = np.full(4, 0.8)
        state.advance(temps, duties, 1.0)
        health = state.health
        assert health[0] > health[1]

    def test_multi_epoch_accumulation(self, state):
        temps = np.full(4, 370.0)
        duties = np.full(4, 0.8)
        for _ in range(4):
            state.advance(temps, duties, 0.5)
        assert state.elapsed_years == pytest.approx(2.0)
        # Roughly matches a single 2-year epoch under constant conditions.
        fresh = HealthState(state.table, state.fmax_init_ghz)
        fresh.advance(temps, duties, 2.0)
        np.testing.assert_allclose(state.health, fresh.health, atol=5e-3)

    def test_rejects_negative_epoch(self, state):
        with pytest.raises(ValueError):
            state.advance(np.full(4, 350.0), np.full(4, 0.5), -0.5)

    def test_rejects_wrong_shapes(self, state):
        with pytest.raises(ValueError):
            state.advance(np.full(3, 350.0), np.full(4, 0.5), 0.5)


class TestEstimateNext:
    def test_preview_does_not_mutate(self, state):
        temps = np.full(4, 380.0)
        duties = np.full(4, 0.9)
        preview = state.estimate_next(temps, duties, 1.0)
        np.testing.assert_allclose(state.health, 1.0)
        assert (preview < 1.0).all()

    def test_preview_matches_subsequent_advance(self, state):
        temps = np.full(4, 380.0)
        duties = np.full(4, 0.9)
        preview = state.estimate_next(temps, duties, 1.0)
        state.advance(temps, duties, 1.0)
        np.testing.assert_allclose(state.health, preview)
