"""Algorithm 1: constraints, ordering, and preferences."""

import numpy as np
import pytest

from repro.core import HayatMapper, MappingError, OnlineHealthEstimator
from repro.core.dcm import temperature_optimized_dcm
from repro.mapping import ChipState
from repro.power import PowerModel
from repro.thermal import ThermalPredictor, ThermalRCNetwork
from repro.workload import make_mix


@pytest.fixture(scope="module")
def setup(chip, floorplan, aging_table):
    net = ThermalRCNetwork(floorplan)
    pm = PowerModel.for_chip(chip)
    pred = ThermalPredictor.learn(net, pm)
    estimator = OnlineHealthEstimator(pred, aging_table)
    influence = net.influence_matrix()
    return estimator, influence


def build_state(chip, floorplan, influence, num_threads=16, seed=0):
    mix = make_mix(["bodytrack", "x264"], num_threads, np.random.default_rng(seed))
    dcm = temperature_optimized_dcm(floorplan, num_threads, influence)
    return ChipState(chip.num_cores, mix.threads, dcm)


class TestMapping:
    def test_all_threads_mapped(self, setup, chip, floorplan):
        estimator, influence = setup
        state = build_state(chip, floorplan, influence)
        mapper = HayatMapper(estimator)
        unmapped = mapper.map_threads(
            state, chip.fmax_init_ghz, np.ones(64), 0.5, 0.0
        )
        assert unmapped == []
        assert (state.assignment >= 0).sum() == 16
        state.validate(chip.fmax_init_ghz)

    def test_frequency_requirements_respected(self, setup, chip, floorplan):
        estimator, influence = setup
        state = build_state(chip, floorplan, influence)
        HayatMapper(estimator).map_threads(
            state, chip.fmax_init_ghz, np.ones(64), 0.5, 0.0
        )
        for core in np.flatnonzero(state.assignment >= 0):
            thread = state.threads[state.assignment[core]]
            assert chip.fmax_init_ghz[core] >= thread.fmin_ghz
            # Threads run at their required frequency, not faster.
            assert state.freq_ghz[core] == pytest.approx(thread.fmin_ghz)

    def test_deterministic(self, setup, chip, floorplan):
        estimator, influence = setup
        a = build_state(chip, floorplan, influence)
        b = build_state(chip, floorplan, influence)
        HayatMapper(estimator).map_threads(a, chip.fmax_init_ghz, np.ones(64), 0.5, 0.0)
        HayatMapper(estimator).map_threads(b, chip.fmax_init_ghz, np.ones(64), 0.5, 0.0)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_stiff_threads_get_tightest_matches(self, setup, chip, floorplan):
        """Eq. 9's frequency matching, combined with the stiffest-first
        ordering, gives the stiff threads the smallest frequency
        headroom (they are placed while tight matches still exist);
        easy threads absorb the leftovers."""
        estimator, influence = setup
        state = build_state(chip, floorplan, influence, num_threads=24, seed=5)
        HayatMapper(estimator).map_threads(
            state, chip.fmax_init_ghz, np.ones(64), 0.5, 0.0
        )
        pairs = []
        for core in np.flatnonzero(state.assignment >= 0):
            thread = state.threads[state.assignment[core]]
            pairs.append((thread.fmin_ghz, chip.fmax_init_ghz[core] - thread.fmin_ghz))
        pairs.sort(reverse=True)  # stiffest first
        quartile = len(pairs) // 4
        stiff_gap = np.mean([gap for _, gap in pairs[:quartile]])
        easy_gap = np.mean([gap for _, gap in pairs[-quartile:]])
        assert stiff_gap < easy_gap

    def test_strict_raises_when_infeasible(self, setup, chip, floorplan):
        estimator, influence = setup
        state = build_state(chip, floorplan, influence)
        slow = np.full(64, 0.5)  # nothing meets any requirement
        with pytest.raises(MappingError):
            HayatMapper(estimator, strict=True).map_threads(
                state, slow, np.ones(64), 0.5, 0.0
            )

    def test_nonstrict_reports_unmapped(self, setup, chip, floorplan):
        estimator, influence = setup
        state = build_state(chip, floorplan, influence)
        slow = np.full(64, 0.5)
        unmapped = HayatMapper(estimator).map_threads(
            state, slow, np.ones(64), 0.5, 0.0
        )
        assert len(unmapped) == 16

    def test_rejects_bad_vector_shapes(self, setup, chip, floorplan):
        estimator, influence = setup
        state = build_state(chip, floorplan, influence)
        with pytest.raises(ValueError):
            HayatMapper(estimator).map_threads(
                state, np.ones(3), np.ones(64), 0.5, 0.0
            )
