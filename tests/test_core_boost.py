"""Frequency boosting: blind and thermally governed."""

import numpy as np
import pytest

from repro.core import HayatManager, blind_boost, governed_boost
from repro.mapping import ChipState, DarkCoreMap
from repro.power import FrequencyLadder, PowerModel
from repro.sim import ChipContext, LifetimeSimulator, SimulationConfig
from repro.thermal import ThermalPredictor, ThermalRCNetwork
from repro.util.constants import T_SAFE_KELVIN
from repro.workload import make_mix


@pytest.fixture()
def mapped_state(chip):
    threads = make_mix(["blackscholes", "canneal"], 8, np.random.default_rng(0)).threads
    dcm = DarkCoreMap.from_on_indices(64, np.arange(0, 64, 8))
    state = ChipState(64, threads, dcm)
    for i, core in enumerate(range(0, 64, 8)):
        state.place(i, core, threads[i].fmin_ghz)
    return state


@pytest.fixture(scope="module")
def predictor(chip, floorplan):
    net = ThermalRCNetwork(floorplan)
    return ThermalPredictor.learn(net, PowerModel.for_chip(chip))


class TestBlindBoost:
    def test_jumps_to_safe_maximum(self, mapped_state, chip):
        ladder = FrequencyLadder()
        boosted = blind_boost(mapped_state, chip.fmax_init_ghz, ladder)
        assert boosted > 0
        for core in np.flatnonzero(mapped_state.assignment >= 0):
            assert mapped_state.freq_ghz[core] == pytest.approx(
                float(ladder.quantize_down(chip.fmax_init_ghz[core]))
            )

    def test_never_violates_timing(self, mapped_state, chip):
        blind_boost(mapped_state, chip.fmax_init_ghz)
        mapped_state.validate(chip.fmax_init_ghz)


class TestGovernedBoost:
    def test_raises_frequencies_under_headroom(self, mapped_state, chip, predictor):
        before = mapped_state.freq_ghz.sum()
        steps = governed_boost(mapped_state, chip.fmax_init_ghz, predictor)
        assert steps > 0
        assert mapped_state.freq_ghz.sum() > before

    def test_predicted_peak_stays_under_limit(self, mapped_state, chip, predictor):
        margin = 4.0
        governed_boost(
            mapped_state, chip.fmax_init_ghz, predictor, margin_k=margin
        )
        activity = np.zeros(64)
        for core in np.flatnonzero(mapped_state.assignment >= 0):
            thread = mapped_state.threads[mapped_state.assignment[core]]
            activity[core] = thread.mean_activity
        temps = predictor.predict(
            mapped_state.freq_ghz, activity, mapped_state.powered_on
        )
        assert temps.max() <= T_SAFE_KELVIN - margin + 1e-6

    def test_timing_respected(self, mapped_state, chip, predictor):
        governed_boost(mapped_state, chip.fmax_init_ghz, predictor)
        mapped_state.validate(chip.fmax_init_ghz)

    def test_rejects_bad_margin(self, mapped_state, chip, predictor):
        with pytest.raises(ValueError):
            governed_boost(
                mapped_state, chip.fmax_init_ghz, predictor, margin_k=0.0
            )


class TestBoostInTheLoop:
    def test_boost_increases_throughput(self, chip, aging_table):
        cfg = SimulationConfig(
            lifetime_years=1.0, epoch_years=0.5, dark_fraction_min=0.5,
            window_s=10.0, seed=9,
        )
        ips = {}
        for boost in (False, True):
            ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
            result = LifetimeSimulator(cfg).run(ctx, HayatManager(boost=boost))
            ips[boost] = np.mean([e.total_ips for e in result.epochs])
        assert ips[True] > ips[False]

    def test_boost_costs_aging(self, chip, aging_table):
        cfg = SimulationConfig(
            lifetime_years=2.0, epoch_years=0.5, dark_fraction_min=0.5,
            window_s=10.0, seed=9,
        )
        health = {}
        for boost in (False, True):
            ctx = ChipContext(chip, aging_table, dark_fraction_min=0.5)
            result = LifetimeSimulator(cfg).run(ctx, HayatManager(boost=boost))
            health[boost] = float(result.epochs[-1].health_after.mean())
        assert health[True] <= health[False] + 1e-9
