"""Lifetime-gain arithmetic (Fig. 11)."""

import numpy as np
import pytest

from repro.analysis import (
    lifetime_at_requirement,
    lifetime_gain_years,
    requirement_for_lifetime,
)


@pytest.fixture()
def trajectories():
    years = np.linspace(0.0, 10.0, 21)
    baseline = 3.0 - 0.05 * years  # loses 0.5 GHz over 10 years
    policy = 3.0 - 0.03 * years  # ages slower
    return years, baseline, policy


class TestRequirement:
    def test_interpolates(self, trajectories):
        years, baseline, _ = trajectories
        assert requirement_for_lifetime(years, baseline, 3.0) == pytest.approx(2.85)

    def test_rejects_outside_span(self, trajectories):
        years, baseline, _ = trajectories
        with pytest.raises(ValueError):
            requirement_for_lifetime(years, baseline, 12.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            requirement_for_lifetime(np.arange(3.0), np.arange(4.0), 1.0)


class TestLifetimeAtRequirement:
    def test_exact_crossing(self, trajectories):
        years, baseline, _ = trajectories
        # baseline hits 2.85 GHz exactly at year 3
        assert lifetime_at_requirement(years, baseline, 2.85) == pytest.approx(3.0)

    def test_never_violated_returns_span(self, trajectories):
        years, baseline, _ = trajectories
        assert lifetime_at_requirement(years, baseline, 1.0) == pytest.approx(10.0)

    def test_fresh_violation_returns_zero(self, trajectories):
        years, baseline, _ = trajectories
        assert lifetime_at_requirement(years, baseline, 3.5) == pytest.approx(0.0)


class TestGain:
    def test_analytic_gain(self, trajectories):
        """Baseline slope -0.05, policy slope -0.03: the requirement at
        target L is 3 - 0.05 L, which the policy sustains to
        (0.05/0.03) L, so the gain is (2/3) L."""
        years, baseline, policy = trajectories
        assert lifetime_gain_years(years, baseline, policy, 3.0) == pytest.approx(
            2.0
        )

    def test_gain_grows_with_target(self, trajectories):
        """The paper's headline: savings grow with the lifetime
        requirement (3 months at 3 years, much more at 10)."""
        years, baseline, policy = trajectories
        g3 = lifetime_gain_years(years, baseline, policy, 3.0)
        g5 = lifetime_gain_years(years, baseline, policy, 5.0)
        assert g5 > g3

    def test_identical_trajectories_zero_gain(self, trajectories):
        years, baseline, _ = trajectories
        assert lifetime_gain_years(years, baseline, baseline, 4.0) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_gain_clipped_by_span(self, trajectories):
        """When the policy never drops below the requirement inside the
        simulated window, the gain reports the span's remainder."""
        years, baseline, policy = trajectories
        flat = np.full_like(baseline, 3.0)
        gain = lifetime_gain_years(years, baseline, flat, 3.0)
        assert gain == pytest.approx(7.0)
