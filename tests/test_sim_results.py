"""Result-record edge cases, in particular the empty (zero-epoch)
lifetime a degraded campaign job produces."""

import math
import warnings

import numpy as np
import pytest

from repro.sim import LifetimeResult


@pytest.fixture()
def empty():
    return LifetimeResult(
        chip_id="chip-00",
        policy_name="hayat",
        dark_fraction_min=0.5,
        fmax_init_ghz=np.array([2.0, 3.0, 2.5]),
    )


class TestEmptyLifetime:
    def test_trajectories_have_zero_length_leading_axis(self, empty):
        assert empty.years().shape == (0,)
        assert empty.health_trajectory().shape == (0, 3)
        assert empty.fmax_trajectory_ghz().shape == (0, 3)
        assert empty.chip_fmax_trajectory_ghz().shape == (0,)
        assert empty.avg_fmax_trajectory_ghz().shape == (0,)

    def test_totals_are_zero(self, empty):
        assert empty.total_dtm_events() == 0
        assert empty.total_dtm_migrations() == 0
        assert empty.total_qos_violations() == 0

    def test_aging_rates_are_zero(self, empty):
        """Regression: these raised IndexError on ``[-1]``."""
        assert empty.chip_fmax_aging_rate() == 0.0
        assert empty.avg_fmax_aging_rate() == 0.0

    def test_averages_are_nan_without_warning(self, empty):
        """Regression: np.mean([]) emitted a RuntimeWarning."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert math.isnan(empty.mean_temp_rise_k(318.0))
            assert math.isnan(empty.mean_comm_cost())

    def test_lifetime_at_requirement_is_zero(self, empty):
        assert empty.lifetime_at_requirement_years(1.0) == 0.0
