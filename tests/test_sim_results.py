"""Result-record edge cases, in particular the empty (zero-epoch)
lifetime a degraded campaign job produces."""

import math
import warnings

import numpy as np
import pytest

from repro.sim import EpochRecord, LifetimeResult


@pytest.fixture()
def empty():
    return LifetimeResult(
        chip_id="chip-00",
        policy_name="hayat",
        dark_fraction_min=0.5,
        fmax_init_ghz=np.array([2.0, 3.0, 2.5]),
    )


def _epoch(index: int, health: np.ndarray) -> EpochRecord:
    """Minimal epoch record with a prescribed post-epoch health map."""
    return EpochRecord(
        epoch_index=index,
        start_years=index * 0.5,
        length_years=0.5,
        mix_description="synthetic",
        dcm_on=np.ones(health.size, dtype=bool),
        worst_temps_k=np.full(health.size, 330.0),
        avg_temp_k=325.0,
        peak_temp_k=335.0,
        dtm_migrations=0,
        dtm_throttles=0,
        duties=np.full(health.size, 0.5),
        health_after=np.asarray(health, dtype=float),
        qos_violations=0,
        total_ips=1.0,
    )


def _result(healths, fmax=(2.0, 3.0, 2.5)) -> LifetimeResult:
    fmax = np.array(fmax, dtype=float)
    return LifetimeResult(
        chip_id="chip-00",
        policy_name="hayat",
        dark_fraction_min=0.5,
        fmax_init_ghz=fmax,
        epochs=[_epoch(i, np.asarray(h)) for i, h in enumerate(healths)],
    )


class TestEmptyLifetime:
    def test_trajectories_have_zero_length_leading_axis(self, empty):
        assert empty.years().shape == (0,)
        assert empty.health_trajectory().shape == (0, 3)
        assert empty.fmax_trajectory_ghz().shape == (0, 3)
        assert empty.chip_fmax_trajectory_ghz().shape == (0,)
        assert empty.avg_fmax_trajectory_ghz().shape == (0,)

    def test_totals_are_zero(self, empty):
        assert empty.total_dtm_events() == 0
        assert empty.total_dtm_migrations() == 0
        assert empty.total_qos_violations() == 0

    def test_aging_rates_are_zero(self, empty):
        """Regression: these raised IndexError on ``[-1]``."""
        assert empty.chip_fmax_aging_rate() == 0.0
        assert empty.avg_fmax_aging_rate() == 0.0

    def test_averages_are_nan_without_warning(self, empty):
        """Regression: np.mean([]) emitted a RuntimeWarning."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert math.isnan(empty.mean_temp_rise_k(318.0))
            assert math.isnan(empty.mean_comm_cost())

    def test_lifetime_at_requirement_is_zero(self, empty):
        assert empty.lifetime_at_requirement_years(1.0) == 0.0


class TestLifetimeAtRequirement:
    def test_interpolates_inside_bracket(self):
        # avg fmax: 2.5 -> 2.0 -> 1.0; requirement 1.5 crosses in epoch 2.
        result = _result([[0.8, 0.8, 0.8], [0.4, 0.4, 0.4]])
        years = result.lifetime_at_requirement_years(1.5)
        assert 0.5 < years < 1.0
        np.testing.assert_allclose(years, 0.5 + 0.5 * (2.0 - 1.5) / (2.0 - 1.0))

    def test_degenerate_bracket_returns_left_edge(self):
        """Regression: a bracket without a usable downward slope
        (``f0 - f1`` zero or NaN) divided by zero and returned
        ``nan``/``inf``.  The chip is known to still meet the
        requirement at the bracket's left edge, so that is the answer."""
        nan = float("nan")
        result = _result([[nan, nan, nan], [0.4, 0.4, 0.4]])
        # freqs: [2.5, nan, 1.0]; the first strictly-below entry is
        # epoch 2, and the bracket (nan, 1.0) has no usable slope.
        years = result.lifetime_at_requirement_years(1.5)
        assert math.isfinite(years)
        assert years == 0.5  # left edge of the bracket

    def test_plateau_never_below_keeps_full_horizon(self):
        # freqs: [2.5, 1.0, 1.0]; a requirement at the plateau value is
        # still met (strict comparison), so the full horizon is the
        # lower-bound answer — no flat-bracket division on the way.
        result = _result([[0.4, 0.4, 0.4], [0.4, 0.4, 0.4]])
        assert result.lifetime_at_requirement_years(1.0) == 1.0


class TestAgingRateGuards:
    def test_zero_start_chip_fmax_rate_is_nan(self):
        """Regression: an all-zero ``fmax_init_ghz`` divided by zero."""
        result = _result([[0.5, 0.5, 0.5]], fmax=(0.0, 0.0, 0.0))
        assert math.isnan(result.chip_fmax_aging_rate())
        assert math.isnan(result.avg_fmax_aging_rate())

    def test_positive_start_still_reports_rates(self):
        result = _result([[0.5, 0.5, 0.5]])
        assert result.chip_fmax_aging_rate() == pytest.approx(0.5)
        assert result.avg_fmax_aging_rate() == pytest.approx(0.5)
