"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this environment has no network access to fetch build deps)."""

from setuptools import setup

setup()
